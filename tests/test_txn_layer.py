"""Unit tests for the transaction layer: locks, timestamps, manager pieces."""

import pytest

from repro.sim import Simulator
from repro.txn.locks import RowLockTable, SharedExclusiveLockTable
from repro.txn.timestamps import DtsOracle, GtsOracle
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import LinkProfile, Topology


def flat_network(sim, config=None):
    config = config or NetworkConfig()
    topology = Topology.single(LinkProfile(config.base_latency, config.bandwidth))
    return Network.from_topology(sim, topology, config=config)


@pytest.fixture
def sim():
    return Simulator(seed=3)


# ----------------------------------------------------------------------
# Row locks
# ----------------------------------------------------------------------
def test_row_lock_grants_immediately_when_free(sim):
    table = RowLockTable(sim)
    event = table.acquire("k", owner=1)
    assert event.triggered
    assert table.holder("k") == 1


def test_row_lock_is_reentrant(sim):
    table = RowLockTable(sim)
    table.acquire("k", 1)
    assert table.acquire("k", 1).triggered


def test_row_lock_queues_fifo(sim):
    table = RowLockTable(sim)
    table.acquire("k", 1)
    order = []

    def waiter(owner):
        yield table.acquire("k", owner)
        order.append(owner)
        yield 0.1
        table.release("k", owner)

    sim.spawn(waiter(2))
    sim.spawn(waiter(3))
    sim.schedule(0.5, table.release, "k", 1)
    sim.run()
    assert order == [2, 3]


def test_row_lock_cancel_wait_removes_queued_owner(sim):
    table = RowLockTable(sim)
    table.acquire("k", 1)
    table.acquire("k", 2)
    table.cancel_wait("k", 2)
    granted = []

    def waiter():
        yield table.acquire("k", 3)
        granted.append(3)

    sim.spawn(waiter())
    sim.schedule(0.1, table.release, "k", 1)
    sim.run()
    assert granted == [3]
    assert table.holder("k") == 3


def test_row_lock_release_by_non_holder_errors(sim):
    table = RowLockTable(sim)
    table.acquire("k", 1)
    with pytest.raises(Exception):
        table.release("k", 2)


# ----------------------------------------------------------------------
# Shard (shared/exclusive) locks
# ----------------------------------------------------------------------
def test_shard_lock_shared_holders_coexist(sim):
    table = SharedExclusiveLockTable(sim)
    assert table.acquire("s", 1, table.SHARED).triggered
    assert table.acquire("s", 2, table.SHARED).triggered
    exclusive_owner, shared = table.holders("s")
    assert exclusive_owner is None
    assert shared == {1, 2}


def test_shard_lock_exclusive_blocks_shared(sim):
    table = SharedExclusiveLockTable(sim)
    table.acquire("s", 1, table.EXCLUSIVE)
    event = table.acquire("s", 2, table.SHARED)
    assert not event.triggered
    table.release("s", 1)
    sim.run()
    assert event.triggered


def test_shard_lock_queued_exclusive_blocks_new_shared(sim):
    """Fairness: shared requests queue behind a waiting exclusive."""
    table = SharedExclusiveLockTable(sim)
    table.acquire("s", 1, table.SHARED)
    exclusive = table.acquire("s", 2, table.EXCLUSIVE)
    late_shared = table.acquire("s", 3, table.SHARED)
    assert not exclusive.triggered
    assert not late_shared.triggered
    table.release("s", 1)
    sim.run()
    assert exclusive.triggered
    assert not late_shared.triggered
    table.release("s", 2)
    sim.run()
    assert late_shared.triggered


def test_shard_lock_upgrade_sole_shared_holder(sim):
    table = SharedExclusiveLockTable(sim)
    table.acquire("s", 1, table.SHARED)
    upgrade = table.acquire("s", 1, table.EXCLUSIVE)
    assert upgrade.triggered
    assert table.write_holder("s") == 1


def test_shard_lock_upgrade_waits_for_other_shared_holders(sim):
    table = SharedExclusiveLockTable(sim)
    table.acquire("s", 1, table.SHARED)
    table.acquire("s", 2, table.SHARED)
    upgrade = table.acquire("s", 1, table.EXCLUSIVE)
    assert not upgrade.triggered
    table.release("s", 2)
    sim.run()
    assert upgrade.triggered
    assert table.write_holder("s") == 1


def test_shard_lock_cancel_wait(sim):
    table = SharedExclusiveLockTable(sim)
    table.acquire("s", 1, table.EXCLUSIVE)
    table.acquire("s", 2, table.EXCLUSIVE)
    table.cancel_wait("s", 2)
    table.release("s", 1)
    sim.run()
    assert table.write_holder("s") is None


# ----------------------------------------------------------------------
# Timestamp oracles
# ----------------------------------------------------------------------
def run_gen(sim, gen):
    return sim.run_until_complete(sim.spawn(gen))


def test_dts_start_timestamps_increase_per_node(sim):
    oracle = DtsOracle(sim)

    def get():
        ts = yield from oracle.start_timestamp("n1")
        return ts

    first = run_gen(sim, get())
    second = run_gen(sim, get())
    assert second > first


def test_dts_commit_timestamp_respects_floor(sim):
    oracle = DtsOracle(sim)

    def get():
        ts = yield from oracle.commit_timestamp("n1", floor_ts=10**18)
        return ts

    assert run_gen(sim, get()) > 10**18


def test_dts_observe_entangles_clocks(sim):
    oracle = DtsOracle(sim)
    remote_ts = oracle.local_now("n2")
    oracle.observe("n1", remote_ts)

    def get():
        ts = yield from oracle.start_timestamp("n1")
        return ts

    assert run_gen(sim, get()) > remote_ts


def test_dts_skew_shows_in_physical_component(sim):
    oracle = DtsOracle(sim, skew_by_node={"fast": 0.5, "slow": 0.0})
    sim.now = 1.0
    assert oracle.peek("fast") > oracle.peek("slow")


def test_gts_is_globally_monotonic_and_costs_roundtrip(sim):
    network = flat_network(sim, NetworkConfig(base_latency=0.1, bandwidth=1e9))
    oracle = GtsOracle(sim, network, "cp")
    results = []

    def get(node):
        ts = yield from oracle.start_timestamp(node)
        results.append((sim.now, ts))

    sim.spawn(get("n1"))
    sim.spawn(get("n2"))
    sim.run()
    times = [t for t, _ts in results]
    stamps = [ts for _t, ts in results]
    assert all(t == pytest.approx(0.2) for t in times)  # one round trip
    assert sorted(stamps) == stamps and len(set(stamps)) == 2


def test_gts_commit_timestamp_respects_floor(sim):
    network = flat_network(sim)
    oracle = GtsOracle(sim, network, "cp")

    def get():
        ts = yield from oracle.commit_timestamp("n1", floor_ts=500)
        return ts

    assert run_gen(sim, get()) > 500


def test_oracle_safe_horizon_below_future_starts(sim):
    oracle = DtsOracle(sim)
    oracle.local_now("n1")
    oracle.local_now("n2")
    horizon = oracle.safe_horizon()

    def get(node):
        ts = yield from oracle.start_timestamp(node)
        return ts

    assert run_gen(sim, get("n1")) >= horizon
    assert run_gen(sim, get("n2")) >= horizon
