"""Crash-recovery tests for in-flight Remus migrations (§3.7)."""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.migration import RemusMigration
from repro.migration.recovery import crash_migration, recover_migration
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def build():
    from repro.config import CostModel

    # Stretch the snapshot copy so there is a window to crash in.
    cluster = Cluster(
        ClusterConfig(num_nodes=3, costs=CostModel(snapshot_scan_per_tuple=2e-3))
    )
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=600, num_shards=6, num_clients=4,
                   tuple_size=256, think_time=0.004),
    )
    workload.create()
    return cluster, workload


def recover(cluster, migration, residual):
    proc = cluster.spawn(recover_migration(cluster, migration, residual))
    cluster.run(until=cluster.sim.now + 30.0)
    assert proc.finished
    return proc.result()


def test_crash_before_tm_rolls_back():
    """A crash before T_m leaves the source authoritative; the destination's
    partial copy is dropped and the migration can be retried."""
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    migration = RemusMigration(cluster, [shard], "node-1", "node-2")
    proc = cluster.spawn(migration.run(), name="migration")
    # Crash mid snapshot copy / propagation, before T_m exists.
    cluster.run(until=0.6)
    assert migration.stats.tm_commit_ts is None
    proc.interrupt("crash")
    cluster.run(until=0.7)
    residual = crash_migration(migration)
    outcome = recover(cluster, migration, residual)
    assert outcome == "rolled_back"
    assert cluster.shard_owner(shard) == "node-1"
    assert not cluster.nodes["node-2"].has_shard_data(shard)
    pool.stop()
    cluster.run(until=cluster.sim.now + 1.0)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples

    # The migration can be initiated again and completes.
    retry = RemusMigration(cluster, [shard], "node-1", "node-2")
    retry_proc = cluster.spawn(retry.run())
    cluster.run(until=cluster.sim.now + 30.0)
    assert retry_proc.finished
    retry_proc.result()
    assert cluster.shard_owner(shard) == "node-2"
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples


def test_crash_after_tm_continues_migration():
    """A crash after T_m committed: the destination owns the shard; recovery
    completes the migration without losing any committed write."""
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]

    # A long transaction keeps dual execution open so we can crash inside it.
    session = cluster.session("node-3")

    def long_txn():
        txn = yield from session.begin(label="long")
        keys = sorted(cluster.nodes["node-1"].heap_for(shard).keys())
        yield from session.read(txn, "ycsb", keys[0])
        yield 5.0
        if not txn.finished:
            yield from session.abort(txn)

    cluster.spawn(long_txn())
    migration = RemusMigration(cluster, [shard], "node-1", "node-2")
    proc = cluster.spawn(migration.run(), name="migration")
    # Let it run until T_m commits (dual execution), then crash.
    while migration.stats.tm_commit_ts is None and not proc.finished:
        cluster.run(until=cluster.sim.now + 0.02)
    assert not proc.finished, "migration finished before we could crash it"
    proc.interrupt("crash")
    cluster.run(until=cluster.sim.now + 0.05)
    residual = crash_migration(migration)
    pool.stop()
    cluster.run(until=cluster.sim.now + 1.0)
    outcome = recover(cluster, migration, residual)
    assert outcome == "completed"
    assert cluster.shard_owner(shard) == "node-2"
    assert not cluster.nodes["node-1"].has_shard_data(shard)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples


def test_crash_after_tm_recovers_under_live_workload():
    """The "completed" recovery path with the YCSB workload still running
    *through* the recovery: post-T_m the destination is authoritative, new
    transactions keep routing there while recovery repairs the copy, and no
    committed write is lost."""
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]

    # A long transaction keeps dual execution open so the crash lands inside.
    session = cluster.session("node-3")

    def long_txn():
        txn = yield from session.begin(label="long")
        keys = sorted(cluster.nodes["node-1"].heap_for(shard).keys())
        yield from session.read(txn, "ycsb", keys[0])
        yield 5.0
        if not txn.finished:
            yield from session.abort(txn)

    cluster.spawn(long_txn())
    migration = RemusMigration(cluster, [shard], "node-1", "node-2")
    proc = cluster.spawn(migration.run(), name="migration")
    while migration.stats.tm_commit_ts is None and not proc.finished:
        cluster.run(until=cluster.sim.now + 0.02)
    assert not proc.finished, "migration finished before we could crash it"
    proc.interrupt("crash")
    cluster.run(until=cluster.sim.now + 0.05)
    residual = crash_migration(migration)
    # NOTE: the client pool keeps committing during the whole recovery.
    outcome = recover(cluster, migration, residual)
    assert outcome == "completed"
    assert cluster.shard_owner(shard) == "node-2"
    cluster.run(until=cluster.sim.now + 0.5)
    pool.stop()
    cluster.run(until=cluster.sim.now + 1.0)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
    # The deliberately interrupted migration process is the only casualty;
    # no client or background process may have died.
    crashes = [
        (p.name, e) for p, e in cluster.sim.failed_processes
        if p.name != "migration"
    ]
    assert not crashes, crashes


def test_residual_prepared_shadow_committed_iff_source_committed():
    """Prepared shadows take the same action as their source transaction."""
    cluster, workload = build()
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    keys = sorted(cluster.nodes["node-1"].heap_for(shard).keys())
    session = cluster.session("node-1")
    migration = RemusMigration(cluster, [shard], "node-1", "node-2")

    # Drive a source transaction into its validation stage mid-migration by
    # writing while in sync mode, then crash before the commit record ships.
    outcome = {}

    def writer():
        txn = yield from session.begin(label="writer")
        yield from session.update(txn, "ycsb", keys[0], {"f0": "recovered"})
        yield 0.8  # stay open across the sync barrier
        try:
            yield from session.commit(txn)
            outcome["committed"] = True
        except Exception:
            if not txn.finished:
                yield from session.abort(txn)
            outcome["committed"] = False

    proc = cluster.spawn(migration.run(), name="migration")
    cluster.spawn(writer())
    # Crash right after T_m commits; the writer may hold a prepared shadow.
    while migration.stats.tm_commit_ts is None and not proc.finished:
        cluster.run(until=cluster.sim.now + 0.02)
    cluster.run(until=cluster.sim.now + 2.0)  # let the writer commit
    if not proc.finished:
        proc.interrupt("crash")
    residual = crash_migration(migration)
    recover(cluster, migration, residual)
    # Whatever happened, the committed value is consistent on the new owner.
    dump = cluster.dump_table("ycsb")
    if outcome.get("committed"):
        assert dump[keys[0]] == {"f0": "recovered"}
    else:
        assert dump[keys[0]] == {"f0": keys[0]}


def test_lossy_destination_mid_replay_wounds_and_recovers():
    """A destination link that turns lossy mid-replay must surface through
    ``Propagation.wounded`` (never a hang), trigger supervised crash
    recovery, and leave no replay slot leaked."""
    from repro.migration import MigrationPlan
    from repro.migration.supervisor import MigrationSupervisor

    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    plan = MigrationPlan(RemusMigration, [([shard], "node-1", "node-2")])
    supervisor = MigrationSupervisor(cluster, plan)
    proc = cluster.spawn(supervisor.run(), name="supervised-plan")

    wounded_pipelines = []

    def nemesis():
        # Fire at the exact async-propagation phase entry: the buffered
        # replay burst is about to ship, so its transfers hit the dead link.
        yield supervisor.phase_event("async_propagation")
        propagation = supervisor.current.propagation
        cluster.network.set_loss("node-1", "node-2", 1.0)
        while propagation.wounded is None:
            yield 0.01
        wounded_pipelines.append(propagation)
        yield 0.2  # keep the link down through the watchdog's crash
        cluster.network.set_loss("node-1", "node-2", 0.0)

    cluster.spawn(nemesis(), name="nemesis")
    cluster.run(until=60.0)
    assert proc.finished
    pool.stop()
    cluster.run(until=cluster.sim.now + 1.0)

    assert wounded_pipelines, "the lossy link never wounded the pipeline"
    propagation = wounded_pipelines[0]
    # No leaked replay slots: every interrupted task released its slot.
    assert propagation._slots.in_use == 0
    assert propagation._slots.queued == 0
    assert plan.stats.crash_recoveries >= 1
    # Recovery (plus the batch retry) finished the move without losing data.
    assert cluster.shard_owner(shard) == "node-2"
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
