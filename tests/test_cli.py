"""Tests for the command-line interface (argument handling only; the heavy
scenario executions are covered by the experiment smoke tests)."""

import pytest

from repro.cli import SCENARIOS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for scenario in SCENARIOS:
        assert scenario in out
    assert "remus" in out


def test_experiment_requires_known_scenario():
    with pytest.raises(SystemExit):
        main(["experiment", "nonsense"])


def test_experiment_requires_known_approach():
    with pytest.raises(SystemExit):
        main(["experiment", "hybrid_a", "--approach", "teleport"])


def test_experiment_rejects_unsupported_scenario_approach_pair(capsys):
    # squall parses (it is valid elsewhere) but scale_out does not support it.
    assert main(["experiment", "scale_out", "--approach", "squall"]) == 2
    assert "does not support" in capsys.readouterr().err


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_chaos_command_with_explicit_plan(capsys):
    code = main([
        "chaos", "--seed", "2",
        "--fault-plan", "mcrash:snapshot_copy@0.4; partition:node-1|node-2@1.0+0.3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault plan:" in out
    assert "crash_migration" in out
    assert "invariant violations: 0" in out
    assert "plan outcome:" in out


def test_experiment_rejects_unknown_topology():
    with pytest.raises(SystemExit):
        main(["experiment", "cross_az", "--topology", "ring"])


def test_experiment_rejects_out_of_range_pump_share(capsys):
    assert main(["experiment", "cross_az", "--pump-share", "1.5"]) == 2
    assert "--pump-share" in capsys.readouterr().err
    assert main(["experiment", "cross_az", "--pump-share", "0"]) == 2
