"""Tests for the command-line interface (argument handling only; the heavy
scenario executions are covered by the experiment smoke tests)."""

import pytest

from repro.cli import SCENARIOS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for scenario in SCENARIOS:
        assert scenario in out
    assert "remus" in out


def test_experiment_requires_known_scenario():
    with pytest.raises(SystemExit):
        main(["experiment", "nonsense"])


def test_experiment_requires_known_approach():
    with pytest.raises(SystemExit):
        main(["experiment", "hybrid_a", "--approach", "teleport"])


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
