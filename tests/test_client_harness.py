"""Tests for the closed-loop client harness: retries, rebinding, pacing."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.txn.errors import SerializationFailure
from repro.workloads.client import ClosedLoopClient, run_transaction
from repro.workloads.hybrid import BatchIngestClient


@pytest.fixture
def cluster():
    c = Cluster(ClusterConfig(num_nodes=2))
    c.create_table("kv", num_shards=4, tuple_size=64)
    c.bulk_load("kv", [(k, {"v": k}) for k in range(50)])
    return c


def test_run_transaction_commits_and_reports(cluster):
    session = cluster.session("node-1")

    def body(sess, txn):
        yield from sess.update(txn, "kv", 1, {"v": "x"})

    def runner():
        ok, err = yield from run_transaction(session, body, label="t")
        return ok, err

    ok, err = cluster.sim.run_until_complete(cluster.spawn(runner()))
    assert ok and err is None
    assert cluster.dump_table("kv")[1] == {"v": "x"}


def test_run_transaction_aborts_on_error(cluster):
    session = cluster.session("node-1")

    def body(sess, txn):
        yield from sess.update(txn, "kv", 1, {"v": "y"})
        raise SerializationFailure("synthetic")

    def runner():
        ok, err = yield from run_transaction(session, body, label="t")
        return ok, err

    ok, err = cluster.sim.run_until_complete(cluster.spawn(runner()))
    assert not ok
    assert err.kind == "ww_conflict"
    assert cluster.dump_table("kv")[1] == {"v": 1}  # rolled back


def test_closed_loop_client_counts_commits(cluster):
    rng = cluster.sim.rng("c")

    def factory():
        def body(sess, txn):
            yield from sess.read(txn, "kv", rng.randint(0, 49))

        return body

    client = ClosedLoopClient(cluster, "node-1", factory, "reader", think_time=0.01)
    client.start()
    cluster.run(until=0.5)
    client.stop()
    cluster.run(until=0.6)
    assert client.committed >= 40
    assert client.aborted == 0


def test_client_rebinds_via_node_resolver(cluster):
    target = {"node": "node-1"}

    def resolver():
        return target["node"]

    def factory():
        def body(sess, txn):
            yield from sess.read(txn, "kv", 1)

        return body

    client = ClosedLoopClient(
        cluster, "node-1", factory, "r", think_time=0.01, node_resolver=resolver
    )
    client.start()
    cluster.run(until=0.2)
    assert client.session.node_id == "node-1"
    target["node"] = "node-2"
    cluster.run(until=0.4)
    client.stop()
    cluster.run(until=0.5)
    assert client.session.node_id == "node-2"


def test_batch_ingest_pacing_controls_rate(cluster):
    client = BatchIngestClient(
        cluster,
        "node-1",
        table="kv",
        start_key=100,
        batch_tuples=400,
        num_batches=1,
        tuples_per_second=1000.0,
    )
    client.start()
    cluster.run(until=30.0)
    assert client.process.finished
    # 400 tuples at 1000/s takes >= ~0.4s; unpaced it would take ~0.03s.
    assert client.finished_at >= 0.35


def test_batch_ingest_retries_until_committed(cluster):
    """Interrupt the batch once: it restarts the same key range and lands."""
    client = BatchIngestClient(
        cluster, "node-1", table="kv", start_key=100, batch_tuples=200,
        num_batches=1, tuples_per_second=2000.0,
    )
    client.start()

    def saboteur():
        yield 0.04  # mid-batch
        for txn in list(cluster.active_txns.values()):
            if txn.label == "batch":
                from repro.txn.errors import MigrationAbort

                exc = MigrationAbort("synthetic kill", txn_id=txn.tid)
                txn.doom(exc)
                if txn.process is not None:
                    txn.process.interrupt(exc)

    cluster.spawn(saboteur())
    cluster.run(until=30.0)
    assert client.process.finished
    assert client.aborted == 1
    assert client.committed == 1
    dump = cluster.dump_table("kv")
    assert all(100 + i in dump for i in range(200))
    assert len(dump) == 250  # no duplicates, no extras
