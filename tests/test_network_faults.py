"""Network fault model and RPC timeout/retry discipline tests."""

import pytest

from repro.sim import (
    LinkProfile,
    Network,
    NetworkConfig,
    RetryPolicy,
    RpcTimeout,
    Simulator,
    Topology,
)
from repro.sim.rpc import PERSISTENT_POLICY, reliable_roundtrip, reliable_send


def make_network(seed=0, **kwargs):
    sim = Simulator(seed=seed)
    config = NetworkConfig(**kwargs)
    topology = Topology.single(LinkProfile(config.base_latency, config.bandwidth))
    return sim, Network.from_topology(sim, topology, config=config)


def wait_for(sim, event, record, key):
    def waiter():
        yield event
        record[key] = sim.now

    sim.spawn(waiter())


# ----------------------------------------------------------------------
# roundtrip = two composed sends (the accounting regression)
# ----------------------------------------------------------------------
def test_roundtrip_matches_two_sends_accounting():
    sim_a, net_a = make_network()
    times = {}
    wait_for(sim_a, net_a.roundtrip("n1", "n2", 100, 300), times, "roundtrip")
    sim_a.run()

    sim_b, net_b = make_network()

    def two_sends():
        yield net_b.send("n1", "n2", 100)
        yield net_b.send("n2", "n1", 300)
        times["two_sends"] = sim_b.now

    sim_b.spawn(two_sends())
    sim_b.run()

    assert net_a.messages_sent == net_b.messages_sent == 2
    assert net_a.bytes_sent == net_b.bytes_sent == 400
    assert times["roundtrip"] == pytest.approx(times["two_sends"])
    assert times["roundtrip"] == pytest.approx(
        net_a.delay_for("n1", "n2", 100) + net_a.delay_for("n2", "n1", 300)
    )


def test_roundtrip_response_leg_sees_directional_faults():
    # A latency spike on the link delays both legs of the round trip.
    sim, net = make_network()
    net.set_extra_latency("n1", "n2", 0.01)
    times = {}
    wait_for(sim, net.roundtrip("n1", "n2", 0, 0), times, "rt")
    sim.run()
    assert times["rt"] == pytest.approx(2 * (net.config.base_latency + 0.01))


# ----------------------------------------------------------------------
# Link faults
# ----------------------------------------------------------------------
def test_partition_blocks_and_heal_restores():
    sim, net = make_network()
    net.partition("n1", "n2")
    times = {}
    wait_for(sim, net.send("n1", "n2", 10), times, "dropped")
    sim.run(until=1.0)
    assert "dropped" not in times
    assert net.messages_dropped == 1

    net.heal_partition("n1", "n2")
    wait_for(sim, net.send("n1", "n2", 10), times, "delivered")
    sim.run(until=2.0)
    assert times["delivered"] == pytest.approx(1.0 + net.delay_for("n1", "n2", 10))


def test_loss_is_deterministic_per_seed():
    def drop_pattern(seed):
        sim, net = make_network(seed=seed)
        net.set_loss("n1", "n2", 0.5)
        pattern = []
        for _ in range(32):
            before = net.messages_dropped
            net.send("n1", "n2", 1)
            pattern.append(net.messages_dropped > before)
        return pattern

    assert drop_pattern(7) == drop_pattern(7)
    assert drop_pattern(7) != drop_pattern(8)


def test_self_messages_ignore_link_faults():
    sim, net = make_network()
    net.partition("n1", "n1")
    times = {}
    wait_for(sim, net.send("n1", "n1", 10), times, "self")
    sim.run()
    assert times["self"] == 0.0


# ----------------------------------------------------------------------
# reliable_send / reliable_roundtrip
# ----------------------------------------------------------------------
def run_rpc(sim, generator):
    proc = sim.spawn(generator)
    sim.run(until=30.0)
    assert proc.finished
    return proc.result()


def test_reliable_send_single_attempt_when_healthy():
    sim, net = make_network()
    attempts = run_rpc(sim, reliable_send(net, "n1", "n2", 10))
    assert attempts == 1


def test_reliable_send_retries_through_loss():
    sim, net = make_network(seed=3)
    net.set_loss("n1", "n2", 1.0)  # drop everything until the link heals

    def healer():
        yield 0.2
        net.set_loss("n1", "n2", 0.0)

    sim.spawn(healer())
    policy = RetryPolicy(timeout=0.01, max_attempts=50)
    attempts = run_rpc(sim, reliable_send(net, "n1", "n2", 10, policy=policy))
    assert attempts > 1
    assert net.messages_sent == attempts
    assert net.messages_dropped == attempts - 1


def test_reliable_send_raises_after_budget_under_partition():
    sim, net = make_network()
    net.partition("n1", "n2")
    policy = RetryPolicy(timeout=0.01, max_attempts=3)
    proc = sim.spawn(reliable_send(net, "n1", "n2", 10, policy=policy))
    sim.run(until=5.0)
    assert proc.finished
    with pytest.raises(RpcTimeout):
        proc.result()
    assert net.messages_dropped == 3


def test_persistent_send_survives_until_heal():
    sim, net = make_network()
    net.partition("n1", "n2")

    def healer():
        yield 2.0
        net.heal_partition("n1", "n2")

    sim.spawn(healer())
    attempts = run_rpc(
        sim, reliable_send(net, "n1", "n2", 10, policy=PERSISTENT_POLICY)
    )
    assert attempts > 1
    assert sim.now >= 2.0


def test_reliable_roundtrip_retries_then_succeeds():
    sim, net = make_network()
    net.partition("n1", "n2")

    def healer():
        yield 0.3
        net.heal_partition("n1", "n2")

    sim.spawn(healer())
    policy = RetryPolicy(timeout=0.05, max_attempts=50)
    attempts = run_rpc(
        sim, reliable_roundtrip(net, "n1", "n2", 10, 10, policy=policy)
    )
    assert attempts > 1


# ----------------------------------------------------------------------
# Vacuum-hold idempotency (crash recovery may release a hold twice)
# ----------------------------------------------------------------------
def test_remove_vacuum_hold_is_idempotent():
    from repro.cluster import Cluster
    from repro.config import ClusterConfig

    cluster = Cluster(ClusterConfig(num_nodes=2))
    horizon_free = cluster.vacuum_horizon()
    cluster.add_vacuum_hold(1)
    assert cluster.vacuum_horizon() == 1
    cluster.remove_vacuum_hold(1)
    cluster.remove_vacuum_hold(1)  # duplicate release must be harmless
    assert cluster.vacuum_horizon() == horizon_free
