"""Determinism: identical seeds reproduce identical runs, bit for bit."""

import hashlib
import os
import pathlib
import subprocess
import sys

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.migration import MigrationPlan, RemusMigration, run_plan
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def run_once(seed):
    cluster = Cluster(ClusterConfig(num_nodes=3, seed=seed))
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=400, num_shards=6, num_clients=4,
                   tuple_size=128, think_time=0.003),
    )
    workload.create()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    plan = MigrationPlan(RemusMigration, [([shard], "node-1", "node-2")])
    proc = cluster.spawn(run_plan(cluster, plan))
    cluster.run(until=5.0)
    assert proc.finished
    pool.stop()
    cluster.run(until=5.5)
    commits = [(r.time, r.label, r.latency) for r in cluster.metrics.commits]
    dump = cluster.dump_table("ycsb")
    return commits, dump, plan.stats.tuples_copied


def test_same_seed_reproduces_exactly():
    first = run_once(seed=42)
    second = run_once(seed=42)
    assert first[0] == second[0]  # every commit time and latency identical
    assert first[1] == second[1]
    assert first[2] == second[2]


def test_different_seed_differs():
    a = run_once(seed=1)
    b = run_once(seed=2)
    assert a[0] != b[0]


_HASHSEED_SNIPPET = """
import hashlib, sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from test_determinism import run_once

digest = hashlib.sha256(repr(run_once(seed=7)).encode("utf-8")).hexdigest()
print(digest)
"""


def _run_with_hashseed(hashseed):
    root = pathlib.Path(__file__).resolve().parent.parent
    snippet = _HASHSEED_SNIPPET.format(
        src=str(root / "src"), tests=str(root / "tests")
    )
    env = dict(os.environ, PYTHONHASHSEED=str(hashseed))
    env.pop("PYTHONPATH", None)
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.strip()


def test_timeline_independent_of_hash_seed():
    """The timeline must not depend on PYTHONHASHSEED.

    String hashing is randomized per process, so any iteration over a plain
    ``set``/``dict`` of strings in protocol code would reorder lock releases
    or replay chains between processes. simlint (SIM003) guards the source;
    this test guards the behaviour: two fresh interpreters with different
    hash seeds must produce byte-identical commit timelines and table dumps.
    """
    a = _run_with_hashseed(0)
    b = _run_with_hashseed(12345)
    assert a == b
