"""Determinism: identical seeds reproduce identical runs, bit for bit."""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.migration import MigrationPlan, RemusMigration, run_plan
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def run_once(seed):
    cluster = Cluster(ClusterConfig(num_nodes=3, seed=seed))
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=400, num_shards=6, num_clients=4,
                   tuple_size=128, think_time=0.003),
    )
    workload.create()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    plan = MigrationPlan(RemusMigration, [([shard], "node-1", "node-2")])
    proc = cluster.spawn(run_plan(cluster, plan))
    cluster.run(until=5.0)
    assert proc.finished
    pool.stop()
    cluster.run(until=5.5)
    commits = [(r.time, r.label, r.latency) for r in cluster.metrics.commits]
    dump = cluster.dump_table("ycsb")
    return commits, dump, plan.stats.tuples_copied


def test_same_seed_reproduces_exactly():
    first = run_once(seed=42)
    second = run_once(seed=42)
    assert first[0] == second[0]  # every commit time and latency identical
    assert first[1] == second[1]
    assert first[2] == second[2]


def test_different_seed_differs():
    a = run_once(seed=1)
    b = run_once(seed=2)
    assert a[0] != b[0]
