"""Focused tests for the propagation pipeline (§3.3) and migration base."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.migration.base import MigrationStats, consolidation_batches
from repro.migration.propagation import Propagation
from repro.storage.wal import WalRecord, WalRecordKind


@pytest.fixture
def cluster():
    c = Cluster(ClusterConfig(num_nodes=2))
    c.create_table("t", num_shards=2, tuple_size=100)
    c.bulk_load("t", [(k, {"v": k}) for k in range(40)])
    return c


def make_propagation(cluster, snapshot_ts=0):
    shard_ids = cluster.tables["t"].shard_ids()
    stats = MigrationStats()
    prop = Propagation(
        cluster, shard_ids, "node-1", "node-2", snapshot_ts, from_lsn=0, stats=stats
    )
    return prop, stats


def wal_change(cluster, xid, shard_id, key, value, start_ts=1):
    cluster.nodes["node-1"].wal.append(
        WalRecord(
            WalRecordKind.INSERT,
            xid=xid,
            shard_id=shard_id,
            key=key,
            value=value,
            size=100,
            start_ts=start_ts,
        )
    )


def test_cache_dropped_on_abort(cluster):
    prop, stats = make_propagation(cluster)
    shard = cluster.tables["t"].shard_ids()[0]
    prop.start()
    wal_change(cluster, xid=900, shard_id=shard, key=1000, value={"v": 1})
    cluster.run(until=0.1)
    assert prop.pending_records == 1
    cluster.nodes["node-1"].wal.append(WalRecord(WalRecordKind.ABORT, xid=900))
    cluster.run(until=0.2)
    assert prop.pending_records == 0
    assert stats.records_applied == 0
    prop.stop()


def test_cache_dropped_when_commit_predates_snapshot(cluster):
    prop, stats = make_propagation(cluster, snapshot_ts=10**9)
    shard = cluster.tables["t"].shard_ids()[0]
    prop.start()
    wal_change(cluster, xid=901, shard_id=shard, key=1001, value={"v": 1})
    cluster.nodes["node-1"].wal.append(
        WalRecord(WalRecordKind.COMMIT, xid=901, commit_ts=5)  # <= snapshot
    )
    cluster.run(until=0.2)
    assert prop.pending_records == 0
    assert stats.shadow_txns == 0
    prop.stop()


def test_records_for_other_shards_ignored(cluster):
    prop, stats = make_propagation(cluster)
    prop.start()
    wal_change(cluster, xid=902, shard_id=("other", 0), key=1, value={})
    cluster.run(until=0.1)
    assert prop.pending_records == 0
    prop.stop()


def test_async_apply_creates_committed_shadow(cluster):
    prop, stats = make_propagation(cluster)
    shard = cluster.tables["t"].shard_ids()[0]
    prop.start()
    # Simulate a committed source txn's records arriving via the WAL.
    node1 = cluster.nodes["node-1"]
    node1.clog.begin(903)
    wal_change(cluster, xid=903, shard_id=shard, key=2000, value={"v": "new"}, start_ts=1)
    node1.clog.set_committed(903, 100)
    node1.wal.append(WalRecord(WalRecordKind.COMMIT, xid=903, commit_ts=100))
    cluster.run(until=0.5)
    assert stats.shadow_txns == 1
    assert stats.records_applied == 1
    dest_heap = cluster.nodes["node-2"].heap_for(shard)
    assert 2000 in dest_heap
    # The shadow committed with the source's commit timestamp.
    version = dest_heap.latest_committed_or_locked(2000)
    assert cluster.nodes["node-2"].clog.commit_ts(version.xmin) == 100
    prop.stop()


def test_applied_watermark_advances_with_reader(cluster):
    prop, _stats = make_propagation(cluster)
    prop.start()
    shard = cluster.tables["t"].shard_ids()[0]
    for i in range(5):
        wal_change(cluster, xid=910 + i, shard_id=shard, key=3000 + i, value={})
    cluster.run(until=0.1)
    # All records consumed (cached); no replay in flight.
    assert prop.applied_watermark() == cluster.nodes["node-1"].wal.tail_lsn
    event = prop.wait_applied_through(cluster.nodes["node-1"].wal.tail_lsn)
    assert event.triggered
    prop.stop()


def test_spill_threshold_adds_reload_latency(cluster):
    costs = cluster.config.costs
    costs.spill_threshold = 3  # tiny, to trigger spilling
    prop, stats = make_propagation(cluster)
    shard = cluster.tables["t"].shard_ids()[0]
    node1 = cluster.nodes["node-1"]
    node1.clog.begin(920)
    for i in range(10):
        wal_change(cluster, xid=920, shard_id=shard, key=4000 + i, value={"v": i})
    node1.clog.set_committed(920, 50)
    prop.start()
    node1.wal.append(WalRecord(WalRecordKind.COMMIT, xid=920, commit_ts=50))
    cluster.run(until=5.0)
    assert stats.records_applied == 10
    prop.stop()


def test_consolidation_batches_cover_all_shards(cluster):
    batches = consolidation_batches(cluster, "node-1", table="t", group_size=1)
    moved = [s for group, _src, _dst in batches for s in group]
    assert set(moved) == set(cluster.shards_on_node("node-1", table="t"))
    assert all(src == "node-1" and dst != "node-1" for _g, src, dst in batches)


def test_migration_stats_merge():
    a = MigrationStats()
    b = MigrationStats()
    a.tuples_copied = 5
    a.sync_waits = 2
    a.sync_wait_total = 0.4
    b.tuples_copied = 7
    b.ww_conflicts = 1
    a.merge(b)
    assert a.tuples_copied == 12
    assert a.ww_conflicts == 1
    assert a.avg_sync_wait == pytest.approx(0.2)


def test_migration_rejects_wrong_source(cluster):
    from repro.migration import RemusMigration

    shard = cluster.shards_on_node("node-2", table="t")[0]
    with pytest.raises(ValueError, match="not on source"):
        RemusMigration(cluster, [shard], "node-1", "node-2")


def test_ww_conflict_interrupt_mid_abort_releases_slot(cluster):
    """Regression (SIM102): a crash-teardown Interrupt landing inside the
    WW-conflict shadow abort must still release the replay slot and the
    record accounting — the old handler-local cleanup skipped both, wedging
    ``drain()`` (and every later validation) on the leaked slot."""
    from repro.sim import Interrupt

    prop, stats = make_propagation(cluster)
    shard = cluster.shards_on_node("node-2", table="t")[0]

    class MoccStub:
        def __init__(self):
            self.results = []

        def post_result(self, xid, ok):
            self.results.append((xid, ok))

    mocc = MoccStub()
    prop.enable_sync(mocc)
    prop.start()

    # A destination transaction commits key `key` at ts=100, after the
    # source transaction's snapshot (start_ts=1): the shadow's replayed
    # UPDATE hits first-updater-wins and raises SerializationFailure.
    node2 = cluster.nodes["node-2"]
    heap = node2.heap_for(shard)
    key = next(k for k in range(40) if k in heap)
    stomped = heap.latest_committed_or_locked(key)
    node2.clog.begin(777)
    heap.mark_deleted(stomped, 777)
    heap.put_version(key, {"v": "dest"}, 777)
    node2.clog.set_committed(777, 100)

    real_abort = node2.manager.local_abort

    def crash_mid_abort(txn):
        # Tear the migration down while the shadow abort is suspended —
        # interrupt() lands at this generator's next yield, i.e. inside
        # the SerializationFailure handler of _validate.
        task = next(t for t in prop._tasks if t.name == "shadow-validate")
        task.interrupt("teardown mid-abort")
        yield 0.0
        yield from real_abort(txn)

    node2.manager.local_abort = crash_mid_abort

    cluster.nodes["node-1"].wal.append(
        WalRecord(
            WalRecordKind.UPDATE,
            xid=950,
            shard_id=shard,
            key=key,
            value={"v": "src"},
            size=100,
            start_ts=1,
        )
    )
    cluster.nodes["node-1"].wal.append(
        WalRecord(WalRecordKind.PREPARE, xid=950, start_ts=1)
    )
    cluster.run(until=1.0)
    node2.manager.local_abort = real_abort

    assert stats.ww_conflicts == 1
    # The leaked-slot bug: in_use stayed 1 forever and drain() wedged.
    assert prop._slots.in_use == 0
    assert prop._slots.queued == 0
    assert prop.pending_records == 0
    assert prop.unreplayed_records == 0
    assert prop._inflight == []
    # The ack never went out (the task died first), and the only process
    # failure is the interrupted validate task itself.
    assert mocc.results == []
    failures = cluster.sim.failed_processes
    assert [type(exc) for _proc, exc in failures] == [Interrupt]
    assert failures[0][0].name == "shadow-validate"
    cluster.sim.failed_processes.clear()
    prop.stop(kill_tasks=True)
