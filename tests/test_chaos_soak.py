"""Chaos soak: randomized fault plans, live invariants, deterministic replay.

The acceptance bar for the chaos harness: across several seeds, a random
fault plan (always containing a mid-migration crash, a partition and a node
crash) is injected into a supervised consolidation under a contended counter
workload, and every run must

* finish (complete or degrade — never wedge),
* report zero invariant violations (SI lost updates, ownership, caches,
  orphaned PREPARED entries), and
* replay bit-identically: same seed, same event timeline.
"""

import pytest

from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.experiments.failover import (
    FailoverConfig,
    run_failover,
    run_remaster_comparison,
)
from repro.faults import Fault, FaultPlan
from repro.faults.plan import KINDS, PHASES
from repro.sim import SeedSequence

SOAK_SEEDS = range(5)


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_chaos_soak_seed(seed):
    first = run_chaos(ChaosConfig(seed=seed))
    assert first.violations == []
    assert first.committed > 0
    # run_chaos itself asserts completion, no crashed processes, and that the
    # counter sum equals the number of committed increments (no lost update).

    # Required fault mix in every random plan.
    plan = FaultPlan.random(
        SeedSequence(seed).stream("fault-plan"),
        ["node-1", "node-2", "node-3", "node-4"],
        ChaosConfig.fault_horizon,
    )
    assert {"crash_migration", "partition", "crash_node"} <= plan.kinds()
    assert len(plan.kinds()) >= 3

    # Deterministic replay: an identical second run, event for event.
    second = run_chaos(ChaosConfig(seed=seed))
    assert first.timeline_signature() == second.timeline_signature()
    assert first.fault_plan == second.fault_plan


def test_explicit_fault_spec_is_used_verbatim():
    spec = "mcrash:snapshot_copy@0.4; partition:node-1|node-2@1.0+0.4"
    result = run_chaos(ChaosConfig(seed=11, fault_spec=spec))
    assert result.violations == []
    assert "crash_migration" in result.fault_plan
    assert any("fault:partition" in name for _t, name in result.marks)


# ----------------------------------------------------------------------
# Failover soak: replicated-shard migration under replica crashes.
#
# Same acceptance bar as the chaos soak, plus the replication invariants
# (replica divergence, dual leadership) that the InvariantChecker now
# monitors live and re-audits at the end of every run: a Remus migration
# of a replicated shard must survive its group leader crashing during the
# snapshot copy AND during async propagation, across seeds, with zero
# violations and a forced election each time.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SOAK_SEEDS)
@pytest.mark.parametrize("phase", ["snapshot_copy", "async_propagation"])
def test_failover_soak_seed(seed, phase):
    result = run_failover(
        FailoverConfig(seed=seed, crash_phase=phase, follow_crash=seed % 2 == 1)
    )
    # run_failover itself raises on invariant violations (including replica
    # divergence and dual leadership), lost updates, orphaned PREPAREDs and
    # crashed processes; re-assert the headline facts here.
    assert result.violations == []
    assert result.committed > 0
    assert result.failover_elections >= 1
    assert result.repl_ship_batches > 0
    # The migrated shard's group went through both an election and a rehome.
    assert max(result.epochs.values()) >= 3


def test_failover_soak_is_deterministic():
    first = run_failover(FailoverConfig(seed=1))
    second = run_failover(FailoverConfig(seed=1))
    assert first.timeline_signature() == second.timeline_signature()
    assert first.fault_plan == second.fault_plan
    assert first.epochs == second.epochs


def test_remaster_onto_follower_moves_strictly_less_data():
    # STAR-style asymmetric availability: wait-and-remaster onto a node
    # that already holds an in-sync follower is near-free, while Remus
    # onto a fresh node pays for the full snapshot copy.
    out = run_remaster_comparison(FailoverConfig(seed=3))
    assert out["remaster_bytes"] == 0
    assert out["remaster_tuples"] == 0
    assert out["remus_bytes"] > 0
    assert out["remaster_bytes"] < out["remus_bytes"]


# ----------------------------------------------------------------------
# FaultPlan construction and the spec grammar
# ----------------------------------------------------------------------
def test_parse_full_grammar():
    plan = FaultPlan.parse(
        "crash:node-1@1.0+0.3; partition:a|b@2.0+0.5; loss:a|b:0.3@1.5+2;"
        " latency:a|b:0.05@1.1+2; stall:node-2@3+0.4; mcrash@0.2;"
        " mcrash:dual_execution@0.9"
    )
    kinds = [f.kind for f in plan.faults]
    assert sorted(kinds) == sorted([
        "crash_node", "partition", "loss", "latency", "stall",
        "crash_migration", "crash_migration",
    ])
    assert [f.at for f in plan.faults] == sorted(f.at for f in plan.faults)
    crash = next(f for f in plan.faults if f.kind == "crash_node")
    assert crash.node == "node-1" and crash.failover == pytest.approx(0.3)
    loss = next(f for f in plan.faults if f.kind == "loss")
    assert (loss.node, loss.peer, loss.value) == ("a", "b", pytest.approx(0.3))
    phases = {f.phase for f in plan.faults if f.kind == "crash_migration"}
    assert phases == {None, "dual_execution"}


@pytest.mark.parametrize("bad", [
    "crash:node-1",  # missing @time
    "teleport:node-1@1.0",  # unknown kind
    "mcrash:warp_phase@1.0",  # unknown phase
    "partition:node-1@1.0",  # missing |peer
    "loss:a|b@1.0",  # missing probability
])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


def test_plan_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultPlan([Fault("meteor_strike", at=1.0)])


def test_random_plans_are_seed_deterministic():
    nodes = ["node-1", "node-2", "node-3"]

    def draw(seed):
        rng = SeedSequence(seed).stream("fault-plan")
        return FaultPlan.random(rng, nodes, 3.0).describe()

    assert draw(5) == draw(5)
    assert draw(5) != draw(6)
    assert all(kind in KINDS for kind in
               FaultPlan.random(SeedSequence(0).stream("x"), nodes, 3.0).kinds())


def test_phase_names_match_remus_phases():
    # The grammar's phase names must track the protocol's actual phases.
    assert set(PHASES) == {
        "snapshot_copy", "async_propagation", "mode_change", "dual_execution"
    }
