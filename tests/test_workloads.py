"""Tests for the workload generators: YCSB, TPC-C, hybrid A/B."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.workloads.hybrid import AnalyticalClient, BatchIngestClient
from repro.workloads.tpcc import TpccConfig, TpccWorkload
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload
from repro.workloads.zipf import ZipfGenerator


def assert_no_crashes(cluster):
    crashes = [(p.name, repr(e)) for p, e in cluster.sim.failed_processes]
    assert not crashes, crashes


# ----------------------------------------------------------------------
# Zipf
# ----------------------------------------------------------------------
def test_zipf_is_skewed_toward_low_ranks():
    from repro.sim.rng import RngStream

    gen = ZipfGenerator(1000, theta=0.99)
    rng = RngStream(1)
    samples = [gen.sample(rng) for _ in range(5000)]
    head = sum(1 for s in samples if s < 10)
    assert head > 1000  # far more than the uniform expectation (50)
    assert min(samples) >= 0 and max(samples) < 1000


def test_zipf_rejects_empty_domain():
    with pytest.raises(ValueError):
        ZipfGenerator(0)


# ----------------------------------------------------------------------
# YCSB
# ----------------------------------------------------------------------
def test_ycsb_runs_and_commits():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=300, num_shards=6, num_clients=4, think_time=0.002),
    )
    workload.create()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=2.0)
    pool.stop()
    cluster.run(until=2.5)
    assert pool.committed > 100
    assert cluster.metrics.commit_count(label="ycsb") == pool.committed
    assert_no_crashes(cluster)


def test_ycsb_hotspot_targets_hot_node():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(
            num_tuples=600,
            num_shards=6,
            distribution="hotspot",
            hotspot_fraction=1.0,
        ),
    )
    workload.create()
    workload.set_hot_node("node-1")
    rng = cluster.sim.rng("probe")
    schema = cluster.tables["ycsb"]
    for _ in range(200):
        key = workload.pick_key(rng)
        shard = schema.shard_for_key(key)
        assert cluster.shard_owner(shard) == "node-1"


def test_ycsb_zipfian_distribution_used():
    cluster = Cluster(ClusterConfig(num_nodes=2))
    workload = YcsbWorkload(
        cluster, YcsbConfig(num_tuples=500, num_shards=4, distribution="zipfian")
    )
    workload.create()
    rng = cluster.sim.rng("probe")
    samples = [workload.pick_key(rng) for _ in range(2000)]
    assert sum(1 for s in samples if s < 5) > 100


# ----------------------------------------------------------------------
# TPC-C
# ----------------------------------------------------------------------
@pytest.fixture
def tpcc_cluster():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    workload = TpccWorkload(
        cluster,
        TpccConfig(num_warehouses=3, districts_per_warehouse=2,
                   customers_per_district=5, items=10),
    )
    workload.create()
    return cluster, workload


def test_tpcc_creates_collocated_tables(tpcc_cluster):
    cluster, workload = tpcc_cluster
    from repro.workloads.tpcc import TABLES

    assert set(TABLES) <= set(cluster.tables)
    # All shards of warehouse 1 live on the same node.
    owners = {
        cluster.shard_owner((table, 0)) for table in TABLES
    }
    assert len(owners) == 1


def test_tpcc_runs_all_transaction_types(tpcc_cluster):
    cluster, workload = tpcc_cluster
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=3.0)
    pool.stop()
    cluster.run(until=3.5)
    assert pool.committed > 50
    assert_no_crashes(cluster)


def test_tpcc_new_order_increments_district_counter(tpcc_cluster):
    cluster, workload = tpcc_cluster
    session = cluster.session("node-1")
    rng = cluster.sim.rng("t")
    body = workload.new_order_body(rng, home=1)

    def run_one():
        txn = yield from session.begin(label="no")
        yield from body(session, txn)
        yield from session.commit(txn)

    before = cluster.dump_table("district")
    cluster.sim.run_until_complete(cluster.spawn(run_one()))
    after = cluster.dump_table("district")
    changed = [k for k in before if before[k]["next_o_id"] != after[k]["next_o_id"]]
    assert len(changed) == 1
    key = changed[0]
    assert after[key]["next_o_id"] == before[key]["next_o_id"] + 1
    # The order and its lines exist.
    o_id = before[key]["next_o_id"]
    orders = cluster.dump_table("orders")
    assert (key[0], key[1], o_id) in orders


def test_tpcc_payment_updates_balances(tpcc_cluster):
    cluster, workload = tpcc_cluster
    session = cluster.session("node-1")
    rng = cluster.sim.rng("t2")
    body = workload.payment_body(rng, home=1)

    def run_one():
        txn = yield from session.begin(label="pay")
        yield from body(session, txn)
        yield from session.commit(txn)

    cluster.sim.run_until_complete(cluster.spawn(run_one()))
    warehouses = cluster.dump_table("warehouse")
    assert any(w["ytd"] > 0 for w in warehouses.values())
    history = cluster.dump_table("history")
    assert len(history) == 1


def test_tpcc_delivery_consumes_new_orders(tpcc_cluster):
    cluster, workload = tpcc_cluster
    session = cluster.session("node-1")
    rng = cluster.sim.rng("t3")
    body = workload.delivery_body(rng, home=1)
    before = len(cluster.dump_table("new_orders"))

    def run_one():
        txn = yield from session.begin(label="del")
        yield from body(session, txn)
        yield from session.commit(txn)

    cluster.sim.run_until_complete(cluster.spawn(run_one()))
    after = len(cluster.dump_table("new_orders"))
    assert after == before - workload.config.districts_per_warehouse


def test_tpcc_distributed_fraction_close_to_config():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    workload = TpccWorkload(cluster, TpccConfig(num_warehouses=6))
    rng = cluster.sim.rng("frac")
    remote = sum(
        1 for _ in range(2000) if workload._pick_warehouses(rng, 1)[1] != 1
    )
    assert 0.05 < remote / 2000 < 0.15


# ----------------------------------------------------------------------
# Hybrid A: batch ingestion
# ----------------------------------------------------------------------
def test_batch_ingest_appends_monotonic_keys():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    workload = YcsbWorkload(cluster, YcsbConfig(num_tuples=200, num_shards=6))
    workload.create()
    client = BatchIngestClient(
        cluster, "node-1", start_key=200, batch_tuples=50, num_batches=3
    )
    client.start()
    cluster.run(until=30.0)
    assert client.process.finished
    assert client.committed == 3
    assert client.tuples_ingested == 150
    dump = cluster.dump_table("ycsb")
    assert len(dump) == 350
    assert all(200 + i in dump for i in range(150))
    assert_no_crashes(cluster)


def test_batch_ingest_commits_via_2pc_across_nodes():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    workload = YcsbWorkload(cluster, YcsbConfig(num_tuples=100, num_shards=6))
    workload.create()
    client = BatchIngestClient(
        cluster, "node-1", start_key=100, batch_tuples=60, num_batches=1
    )
    client.start()
    cluster.run(until=30.0)
    # 60 hashed keys necessarily span several nodes: the batch is distributed.
    assert client.committed == 1
    assert len(cluster.dump_table("ycsb")) == 160


# ----------------------------------------------------------------------
# Hybrid B: analytical duplicate check
# ----------------------------------------------------------------------
def test_analytical_client_counts_rows_and_finds_no_duplicates():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    workload = YcsbWorkload(cluster, YcsbConfig(num_tuples=400, num_shards=6))
    workload.create()
    client = AnalyticalClient(cluster, "node-2")
    client.start()
    cluster.run(until=30.0)
    assert client.process.finished
    assert client.rows_seen == 400
    assert client.duplicates == 0
    assert client.committed == 1
    assert_no_crashes(cluster)


def test_analytical_snapshot_ignores_concurrent_inserts():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    workload = YcsbWorkload(cluster, YcsbConfig(num_tuples=400, num_shards=6))
    workload.create()
    client = AnalyticalClient(cluster, "node-2")
    ingest = BatchIngestClient(
        cluster, "node-1", start_key=400, batch_tuples=100, num_batches=1
    )
    client.start()
    cluster.run(until=0.001)
    ingest.start()
    cluster.run(until=60.0)
    assert client.process.finished and ingest.process.finished
    # The scan's snapshot predates the batch commit: it sees exactly the
    # original rows even though the batch landed mid-scan.
    assert client.rows_seen == 400
    assert client.duplicates == 0
    assert len(cluster.dump_table("ycsb")) == 500
