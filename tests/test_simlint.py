"""simlint (``repro lint``): every rule fires, every near-miss doesn't.

Each rule gets a minimal firing fixture and a near-miss that exercises the
rule's discrimination (the thing a naive grep would get wrong). On top of
that: suppression comments, path scoping, baseline round-trips, CLI exit
codes, and the self-check that the repaired tree is clean.
"""

import json
import pathlib
import textwrap

from repro.analysis import (
    RULES,
    analyze_paths,
    analyze_source,
    apply_baseline,
    default_config,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import LintConfig, RuleScope
from repro.cli import main as cli_main

PROTOCOL_PATH = "src/repro/txn/fixture.py"


def lint(source, path=PROTOCOL_PATH, config=None):
    """Return the rule codes found in ``source`` (deduplicated, sorted)."""
    source = textwrap.dedent(source)
    violations = analyze_source(source, path=path, config=config)
    return sorted({v.rule for v in violations})


# ----------------------------------------------------------------------
# SIM001 — wall clock
# ----------------------------------------------------------------------
def test_sim001_fires_on_time_time():
    assert "SIM001" in lint(
        """
        import time

        def stamp():
            return time.time()
        """
    )


def test_sim001_fires_on_datetime_now_and_from_import():
    assert "SIM001" in lint("import datetime\nts = datetime.now()\n")
    assert "SIM001" in lint("from time import monotonic\n")


def test_sim001_near_miss_virtual_clock_and_sleep():
    # sim.now is the virtual clock; time.sleep is not a clock *read* and the
    # attribute `time` on another object is not the time module.
    assert "SIM001" not in lint(
        """
        from time import sleep

        def stamp(sim, record):
            record.time = sim.now
            return record.time
        """
    )


def test_sim001_exempt_inside_kernel():
    src = "import time\nnow = time.monotonic()\n"
    assert "SIM001" in lint(src, path="src/repro/txn/fixture.py")
    assert "SIM001" not in lint(src, path="src/repro/sim/kernel.py")


# ----------------------------------------------------------------------
# SIM002 — unseeded random
# ----------------------------------------------------------------------
def test_sim002_fires_on_import_and_attribute():
    assert "SIM002" in lint("import random\n")
    assert "SIM002" in lint("from random import choice\n")
    assert "SIM002" in lint("x = random.random()\n")


def test_sim002_near_miss_rng_stream():
    # Drawing from a labelled stream is the sanctioned idiom.
    assert "SIM002" not in lint(
        """
        def jitter(sim):
            rng = sim.rng("network/jitter")
            return rng.uniform(0.0, 1.0)
        """
    )


def test_sim002_exempt_inside_rng_module():
    assert "SIM002" not in lint("import random\n", path="src/repro/sim/rng.py")


# ----------------------------------------------------------------------
# SIM003 — unordered iteration
# ----------------------------------------------------------------------
def test_sim003_fires_on_local_set_iteration():
    assert "SIM003" in lint(
        """
        def release(owners):
            waiters = set(owners)
            for owner in waiters:
                owner.wake()
        """
    )


def test_sim003_fires_on_self_attr_assigned_elsewhere_in_module():
    # The set() assignment lives in __init__; the iteration in another method.
    assert "SIM003" in lint(
        """
        class LockTable:
            def __init__(self):
                self.owners = set()

            def release_all(self):
                for owner in self.owners:
                    owner.wake()
        """
    )


def test_sim003_fires_through_transparent_wrappers_and_binops():
    assert "SIM003" in lint(
        """
        def drain(pending):
            live = {1, 2}
            for item in list(live):
                pending.discard(item)
        """
    )
    assert "SIM003" in lint(
        """
        def union(a):
            b = set()
            return [x for x in a | b]
        """
    )


def test_sim003_near_miss_sorted_and_lists():
    assert "SIM003" not in lint(
        """
        class LockTable:
            def __init__(self):
                self.owners = set()
                self.queue = []

            def release_all(self):
                for owner in sorted(self.owners):
                    owner.wake()
                for waiter in self.queue:
                    waiter.wake()
                return len(self.owners)
        """
    )


def test_sim003_known_set_attrs_config():
    src = """
    def release(participant):
        for lock in participant.row_locks:
            lock.release()
    """
    # Without cross-module knowledge the attribute's type is unknown.
    assert "SIM003" not in lint(src)
    config = LintConfig(
        scopes=default_config().scopes,
        known_set_attrs=frozenset({"row_locks"}),
    )
    assert "SIM003" in lint(src, config=config)


# ----------------------------------------------------------------------
# SIM004 — raw network send
# ----------------------------------------------------------------------
def test_sim004_fires_on_raw_send_and_broadcast():
    assert "SIM004" in lint(
        """
        def transfer(self, size):
            yield self.cluster.network.send(self.source, self.dest, size)
        """
    )
    assert "SIM004" in lint("def f(net):\n    return net.broadcast('a', ['b'], 1)\n")


def test_sim004_near_miss_reliable_rpc():
    assert "SIM004" not in lint(
        """
        def transfer(self, size):
            yield from self.cluster.rpc_send(self.source, self.dest, size)
        """
    )


def test_sim004_only_in_protocol_paths():
    src = "def f(network):\n    return network.send('a', 'b', 1)\n"
    assert "SIM004" in lint(src, path="src/repro/migration/fixture.py")
    # The RPC layer itself legitimately calls raw send.
    assert "SIM004" not in lint(src, path="src/repro/sim/rpc.py")


# ----------------------------------------------------------------------
# SIM005 — id() ordering
# ----------------------------------------------------------------------
def test_sim005_fires_on_id_key():
    assert "SIM005" in lint(
        """
        def order(txns):
            return sorted(txns, key=lambda t: id(t))
        """
    )


def test_sim005_near_miss_stable_field_and_methods():
    # Keying by a stable field, and *methods* named id, are fine.
    assert "SIM005" not in lint(
        """
        def order(txns, node):
            node.id("label")
            return sorted(txns, key=lambda t: t.xid)
        """
    )


# ----------------------------------------------------------------------
# SIM006 — swallowed errors
# ----------------------------------------------------------------------
def test_sim006_fires_on_bare_except():
    assert "SIM006" in lint(
        """
        def run(step):
            try:
                step()
            except:
                pass
        """
    )


def test_sim006_fires_on_swallowed_sim_error():
    assert "SIM006" in lint(
        """
        def run(step):
            try:
                step()
            except SimulationError:
                pass
        """
    )


def test_sim006_near_miss_handled_or_specific():
    assert "SIM006" not in lint(
        """
        def run(step, log):
            try:
                step()
            except SimulationError as exc:
                log.append(exc)
                raise
            except KeyError:
                pass
        """
    )


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
def test_same_line_suppression():
    src = (
        "def f():\n"
        "    s = set()\n"
        "    for x in s:  # simlint: ignore[SIM003]\n"
        "        print(x)\n"
    )
    assert "SIM003" not in lint(src)


def test_suppression_is_per_rule_and_per_line():
    src = (
        "import random  # simlint: ignore[SIM002]\n"
        "import time\n"
        "t = time.time()\n"
    )
    codes = lint(src)
    assert "SIM002" not in codes
    assert "SIM001" in codes


def test_suppression_accepts_multiple_codes():
    src = "for x in {1, 2} | {3}:  # simlint: ignore[SIM003, SIM005]\n    pass\n"
    assert lint(src) == []


# ----------------------------------------------------------------------
# Scoping machinery
# ----------------------------------------------------------------------
def test_rule_scope_include_exclude():
    scope = RuleScope(include=("*/txn/*",), exclude=("*/txn/errors.py",))
    assert scope.matches("src/repro/txn/manager.py")
    assert not scope.matches("src/repro/txn/errors.py")
    assert not scope.matches("src/repro/sim/kernel.py")


def test_rule_catalogue_complete():
    assert sorted(RULES) == [
        "SIM001",
        "SIM002",
        "SIM003",
        "SIM004",
        "SIM005",
        "SIM006",
        "SIM101",
        "SIM102",
        "SIM103",
        "SIM104",
    ]
    for rule_cls in RULES.values():
        assert rule_cls.title


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
FIXTURE_BAD = "import random\n\n\ndef f():\n    return random.random()\n"


def test_baseline_round_trip(tmp_path):
    bad = tmp_path / "proto.py"
    bad.write_text(FIXTURE_BAD)
    violations, errors = analyze_paths([str(bad)], root=str(tmp_path))
    assert errors == []
    assert len(violations) == 2  # the import and the attribute use

    baseline_file = tmp_path / "baseline.json"
    write_baseline(violations, str(baseline_file))
    baseline = load_baseline(str(baseline_file))
    fresh, accepted = apply_baseline(violations, baseline)
    assert fresh == []
    assert len(accepted) == 2


def test_baseline_does_not_mask_new_violations(tmp_path):
    bad = tmp_path / "proto.py"
    bad.write_text(FIXTURE_BAD)
    violations, _ = analyze_paths([str(bad)], root=str(tmp_path))
    baseline_file = tmp_path / "baseline.json"
    write_baseline(violations, str(baseline_file))

    # A *second* copy of a baselined violation still fails: counts matter.
    bad.write_text(FIXTURE_BAD + "\n\ndef g():\n    return random.random()\n")
    violations, _ = analyze_paths([str(bad)], root=str(tmp_path))
    fresh, accepted = apply_baseline(violations, load_baseline(str(baseline_file)))
    assert len(accepted) == 2
    assert len(fresh) == 1
    assert fresh[0].rule == "SIM002"


def test_baseline_rejects_unknown_version(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(json.dumps({"version": 99, "entries": {}}))
    try:
        load_baseline(str(baseline_file))
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError for unknown baseline version")


# ----------------------------------------------------------------------
# CLI: repro lint
# ----------------------------------------------------------------------
def run_cli(*argv):
    return cli_main(list(argv))


def test_cli_exit_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(sim):\n    return sim.now\n")
    assert run_cli("lint", str(clean)) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_exit_one_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert run_cli("lint", str(bad)) == 1
    out = capsys.readouterr().out
    assert "SIM002" in out


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert run_cli("lint", "--format", "json", str(bad)) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is False
    assert document["violations"][0]["rule"] == "SIM002"
    assert document["violations"][0]["fingerprint"]


def test_cli_baseline_flow(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    baseline = tmp_path / "baseline.json"
    assert run_cli("lint", "--write-baseline", str(baseline), str(bad)) == 0
    assert run_cli("lint", "--baseline", str(baseline), str(bad)) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_exit_two_on_bad_baseline(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    garbage = tmp_path / "garbage.json"
    garbage.write_text("not json at all")
    assert run_cli("lint", "--baseline", str(garbage), str(bad)) == 2


def test_cli_exit_one_on_syntax_error(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert run_cli("lint", str(broken)) == 1


def test_cli_list_rules(capsys):
    assert run_cli("lint", "--list-rules") == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


# ----------------------------------------------------------------------
# The gate itself: the repaired tree is clean with an empty baseline.
# ----------------------------------------------------------------------
def test_repo_tree_is_clean():
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    violations, errors = analyze_paths(
        [str(repo_root / "src" / "repro")], root=str(repo_root)
    )
    assert errors == []
    assert violations == [], "\n".join(v.render() for v in violations)
