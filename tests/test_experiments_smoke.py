"""Fast smoke tests of every experiment harness at tiny scale.

The benchmark suite runs the calibrated configurations; these tests verify
the harness code paths (setup, marks, summarisation, consistency checks)
with minimal workloads so `pytest tests/` stays quick.
"""

import pytest

from repro.experiments import registry
from repro.experiments.consolidation import ConsolidationConfig
from repro.experiments.high_contention import HighContentionConfig
from repro.experiments.load_balancing import LoadBalancingConfig
from repro.experiments.scale_out import ScaleOutConfig


def tiny_consolidation(**kwargs):
    defaults = dict(
        num_tuples=1200,
        num_shards=12,
        ycsb_clients=4,
        batch_tuples=600,
        num_batches=2,
        batch_rate=2000.0,
        warmup=1.0,
        settle=1.0,
        snapshot_cost=3e-4,
        analytical_row_cost=5e-4,
        max_sim_time=60.0,
    )
    defaults.update(kwargs)
    return ConsolidationConfig(**defaults)


@pytest.mark.parametrize("approach", ["remus", "wait_and_remaster"])
def test_hybrid_a_smoke(approach):
    result = registry.run("hybrid_a", approach=approach, config=tiny_consolidation())
    assert result.extra["data_intact"]
    assert result.migration_window[0] is not None
    assert result.throughput, "throughput series should not be empty"
    if approach == "remus":
        assert result.abort_ratio == 0.0


def test_hybrid_a_squall_smoke():
    result = registry.run("hybrid_a", approach="squall", config=tiny_consolidation())
    assert result.extra["data_intact"]


def test_hybrid_b_smoke():
    result = registry.run("hybrid_b", approach="remus", config=tiny_consolidation(group_size=3))
    assert result.extra["duplicates"] == 0
    assert result.extra["rows_seen"] == 1200
    assert result.extra["data_intact"]


def test_hybrid_b_wait_and_remaster_blocks():
    # Make the analytical query slow enough to span the migrations.
    result = registry.run(
        "hybrid_b",
        approach="wait_and_remaster",
        config=tiny_consolidation(group_size=3, analytical_row_cost=2.5e-3),
    )
    assert result.extra["data_intact"]
    # The analytical txn keeps the gate closed: measurable downtime.
    assert result.downtime_longest > 0.2


def test_load_balancing_smoke():
    config = LoadBalancingConfig(
        num_tuples=1200,
        num_shards=12,
        ycsb_clients=4,
        warmup=1.0,
        settle=1.0,
        max_sim_time=60.0,
    )
    result = registry.run("load_balancing", approach="remus", config=config)
    assert result.extra["data_intact"]
    assert result.extra["migration_aborts"] == 0
    # At smoke scale (4 clients) the hot node is barely saturated, so only
    # sanity-check the level here; the calibrated throughput *gain* is
    # asserted by benchmarks/test_fig8_load_balancing.py.
    assert result.extra["tput_after"] > 0.85 * result.extra["tput_before"]


def test_scale_out_smoke():
    config = ScaleOutConfig(
        num_warehouses=6,
        warehouses_to_move=2,
        warehouses_per_batch=1,
        districts_per_warehouse=2,
        customers_per_district=6,
        items=12,
        warmup=1.0,
        settle=1.0,
        max_sim_time=60.0,
    )
    result = registry.run("scale_out", approach="remus", config=config)
    assert result.extra["migration_aborts"] == 0
    assert result.extra["new_node_shards"] == 16  # 2 warehouses x 8 tables
    assert result.extra["tput_after"] > 0


def test_scale_out_rejects_squall():
    # The registry validates approach support before the runner is entered.
    with pytest.raises(ValueError, match="does not support approach 'squall'"):
        registry.run("scale_out", approach="squall")


def test_high_contention_smoke():
    config = HighContentionConfig(
        shard_tuples=800,
        hot_tuples=40,
        num_clients=8,
        warmup=1.0,
        run_after=1.0,
        max_sim_time=30.0,
    )
    result = registry.run("high_contention", approach="remus", config=config)
    assert result.extra["data_intact"]
    assert result.extra["tput_baseline"] > 0
    assert result.extra["cpu_source"], "CPU series should exist"


def test_added_node_gets_shard_map_replica():
    from repro.cluster import Cluster
    from repro.config import ClusterConfig

    cluster = Cluster(ClusterConfig(num_nodes=2))
    cluster.create_table("kv", num_shards=4, tuple_size=64)
    cluster.bulk_load("kv", [(k, k) for k in range(40)])
    node = cluster.add_node("node-3")
    # The new node can route queries immediately.
    session = cluster.session("node-3")

    def body():
        txn = yield from session.begin()
        value = yield from session.read(txn, "kv", 7)
        yield from session.commit(txn)
        return value

    assert cluster.sim.run_until_complete(cluster.spawn(body())) == 7
    assert node.shardmap_heap.key_count == 4


def tiny_cross_az(**kwargs):
    from repro.experiments.geo import CrossAzConfig

    defaults = dict(
        num_tuples=2000,
        num_shards=16,
        ycsb_clients=6,
        warmup=1.5,
        settle=1.0,
    )
    defaults.update(kwargs)
    return CrossAzConfig(**defaults)


def test_cross_az_smoke():
    result = registry.run("cross_az", approach="remus", config=tiny_cross_az())
    assert result.extra["data_intact"]
    assert result.extra["topology"] == "multi_az"
    assert result.extra["topology_contended"] is True
    assert result.extra["pump_share"] == 1.0
    assert result.extra["copy_duration"] > 0
    # The copy competes with cross-AZ foreground traffic: a visible dip.
    assert result.extra["fg_dip"] > 0
    payload = result.to_dict()
    assert payload["extra"]["topology"] == "multi_az"


def test_cross_az_pump_share_trades_dip_for_copy_time():
    full = registry.run("cross_az", approach="remus", config=tiny_cross_az())
    throttled = registry.run(
        "cross_az", approach="remus", config=tiny_cross_az(pump_share=0.25)
    )
    # Throttling the migration class shrinks the foreground dip and
    # stretches the copy (the full sweep is gated in `repro bench`).
    assert throttled.extra["fg_dip"] < full.extra["fg_dip"]
    assert throttled.extra["copy_duration"] > full.extra["copy_duration"]
    assert throttled.extra["data_intact"]


def test_cross_az_backup_traffic_deepens_the_dip():
    plain = registry.run("cross_az", approach="remus", config=tiny_cross_az())
    with_backup = registry.run(
        "cross_az", approach="remus", config=tiny_cross_az(backup=True)
    )
    # Backup bulk traffic shares the same trunk direction as the copy, so
    # the foreground runs slower during the copy (and before it — the
    # stream also depresses the baseline, so compare absolute rates, not
    # the per-run dip) and the copy takes longer.
    assert with_backup.extra["fg_during_copy"] < plain.extra["fg_during_copy"]
    assert with_backup.avg_throughput_before < plain.avg_throughput_before
    assert with_backup.extra["copy_duration"] > plain.extra["copy_duration"]
    assert with_backup.extra["data_intact"]
