"""Integration tests: transactions on the simulated cluster (no migration)."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.txn.errors import SerializationFailure, UniqueViolation


def make_cluster(num_nodes=3, scheme="dts", **kwargs):
    config = ClusterConfig(num_nodes=num_nodes, timestamp_scheme=scheme, **kwargs)
    return Cluster(config)


@pytest.fixture
def cluster():
    c = make_cluster()
    c.create_table("kv", num_shards=6, tuple_size=100)
    c.bulk_load("kv", [(k, {"v": k}) for k in range(100)])
    return c


def run(cluster, gen):
    return cluster.sim.run_until_complete(cluster.spawn(gen))


def simple_txn(session, ops):
    """Run a list of (op, key[, value]) and commit; returns results."""

    def body():
        txn = yield from session.begin(label="test")
        results = []
        for op in ops:
            if op[0] == "read":
                results.append((yield from session.read(txn, "kv", op[1])))
            elif op[0] == "update":
                results.append((yield from session.update(txn, "kv", op[1], op[2])))
            elif op[0] == "insert":
                results.append((yield from session.insert(txn, "kv", op[1], op[2])))
            elif op[0] == "delete":
                results.append((yield from session.delete(txn, "kv", op[1])))
        yield from session.commit(txn)
        return results

    return body()


def test_read_committed_data(cluster):
    session = cluster.session("node-1")
    results = run(cluster, simple_txn(session, [("read", 5)]))
    assert results == [{"v": 5}]


def test_read_missing_key_returns_none(cluster):
    session = cluster.session("node-1")
    results = run(cluster, simple_txn(session, [("read", 999)]))
    assert results == [None]


def test_update_then_read_in_same_txn(cluster):
    session = cluster.session("node-1")
    results = run(
        cluster,
        simple_txn(session, [("update", 5, {"v": 50}), ("read", 5)]),
    )
    assert results == [True, {"v": 50}]


def test_update_visible_to_later_txn(cluster):
    session = cluster.session("node-1")
    run(cluster, simple_txn(session, [("update", 5, {"v": 50})]))
    results = run(cluster, simple_txn(session, [("read", 5)]))
    assert results == [{"v": 50}]


def test_update_visible_from_other_node(cluster):
    run(cluster, simple_txn(cluster.session("node-1"), [("update", 5, {"v": 50})]))
    results = run(cluster, simple_txn(cluster.session("node-2"), [("read", 5)]))
    assert results == [{"v": 50}]


def test_insert_and_read_back(cluster):
    session = cluster.session("node-2")
    run(cluster, simple_txn(session, [("insert", 500, {"v": "new"})]))
    results = run(cluster, simple_txn(session, [("read", 500)]))
    assert results == [{"v": "new"}]


def test_insert_duplicate_raises_unique_violation(cluster):
    session = cluster.session("node-1")
    with pytest.raises(UniqueViolation):
        run(cluster, simple_txn(session, [("insert", 5, {"v": "dup"})]))


def test_delete_makes_row_invisible(cluster):
    session = cluster.session("node-1")
    run(cluster, simple_txn(session, [("delete", 5)]))
    results = run(cluster, simple_txn(session, [("read", 5)]))
    assert results == [None]


def test_reinsert_after_delete(cluster):
    session = cluster.session("node-1")
    run(cluster, simple_txn(session, [("delete", 5)]))
    run(cluster, simple_txn(session, [("insert", 5, {"v": "again"})]))
    results = run(cluster, simple_txn(session, [("read", 5)]))
    assert results == [{"v": "again"}]


def test_snapshot_isolation_repeatable_read(cluster):
    """A long transaction does not see a concurrent committed update."""
    session_a = cluster.session("node-1")
    session_b = cluster.session("node-2")
    observed = []

    def long_reader():
        txn = yield from session_a.begin(label="long")
        first = yield from session_a.read(txn, "kv", 5)
        yield 1.0  # concurrent writer commits in this window
        second = yield from session_a.read(txn, "kv", 5)
        yield from session_a.commit(txn)
        observed.append((first, second))

    def writer():
        yield 0.2
        txn = yield from session_b.begin(label="writer")
        yield from session_b.update(txn, "kv", 5, {"v": "changed"})
        yield from session_b.commit(txn)

    cluster.spawn(long_reader())
    cluster.spawn(writer())
    cluster.sim.run()
    assert observed == [({"v": 5}, {"v": 5})]


def test_ww_conflict_first_updater_wins(cluster):
    """Two concurrent updates to one row: the second to commit aborts."""
    session_a = cluster.session("node-1")
    session_b = cluster.session("node-2")
    outcome = {}

    def updater(name, session, delay):
        yield delay
        txn = yield from session.begin(label=name)
        try:
            yield from session.update(txn, "kv", 7, {"v": name})
            yield 0.5  # hold the row lock so the other txn queues behind us
            yield from session.commit(txn)
            outcome[name] = "committed"
        except SerializationFailure:
            yield from session.abort(txn)
            outcome[name] = "aborted"

    cluster.spawn(updater("a", session_a, 0.0))
    cluster.spawn(updater("b", session_b, 0.1))
    cluster.sim.run()
    assert outcome == {"a": "committed", "b": "aborted"}


def test_non_conflicting_concurrent_updates_both_commit(cluster):
    session_a = cluster.session("node-1")
    session_b = cluster.session("node-2")
    outcome = {}

    def updater(name, session, key):
        txn = yield from session.begin(label=name)
        yield from session.update(txn, "kv", key, {"v": name})
        yield from session.commit(txn)
        outcome[name] = "committed"

    cluster.spawn(updater("a", session_a, 11))
    cluster.spawn(updater("b", session_b, 12))
    cluster.sim.run()
    assert outcome == {"a": "committed", "b": "committed"}


def test_distributed_txn_updates_multiple_nodes(cluster):
    """A transaction writing shards on different nodes commits via 2PC."""
    session = cluster.session("node-1")
    # find two keys on different nodes
    schema = cluster.tables["kv"]
    keys_by_node = {}
    for key in range(100):
        owner = cluster.shard_owner(schema.shard_for_key(key))
        keys_by_node.setdefault(owner, key)
        if len(keys_by_node) >= 2:
            break
    key_a, key_b = list(keys_by_node.values())[:2]

    def body():
        txn = yield from session.begin(label="dist")
        yield from session.update(txn, "kv", key_a, {"v": "A"})
        yield from session.update(txn, "kv", key_b, {"v": "B"})
        assert txn.is_distributed
        cts = yield from session.commit(txn)
        return cts

    run(cluster, body())
    dump = cluster.dump_table("kv")
    assert dump[key_a] == {"v": "A"}
    assert dump[key_b] == {"v": "B"}


def test_abort_rolls_back_changes(cluster):
    session = cluster.session("node-1")

    def body():
        txn = yield from session.begin(label="rollback")
        yield from session.update(txn, "kv", 5, {"v": "junk"})
        yield from session.abort(txn)

    run(cluster, body())
    results = run(cluster, simple_txn(session, [("read", 5)]))
    assert results == [{"v": 5}]


def test_commit_timestamps_increase_per_session(cluster):
    session = cluster.session("node-1")
    cts_list = []

    def one():
        txn = yield from session.begin()
        yield from session.update(txn, "kv", 3, {"v": "x"})
        cts = yield from session.commit(txn)
        cts_list.append(cts)

    run(cluster, one())
    run(cluster, one())
    assert cts_list[1] > cts_list[0]


def test_read_only_commit_is_cheap_and_counted(cluster):
    session = cluster.session("node-1")
    before = len(cluster.metrics.commits)
    run(cluster, simple_txn(session, [("read", 1)]))
    assert len(cluster.metrics.commits) == before + 1


def test_metrics_record_aborts(cluster):
    session = cluster.session("node-1")

    def body():
        txn = yield from session.begin(label="bad")
        try:
            yield from session.insert(txn, "kv", 5, {"v": "dup"})
        except UniqueViolation as exc:
            yield from session.abort(txn, reason=exc)

    run(cluster, body())
    assert cluster.metrics.abort_count(kind="unique") == 1


def test_gts_scheme_runs_transactions():
    cluster = make_cluster(scheme="gts")
    cluster.create_table("kv", num_shards=3, tuple_size=100)
    cluster.bulk_load("kv", [(k, k) for k in range(10)])
    session = cluster.session("node-1")
    results = run(cluster, simple_txn(session, [("read", 4), ("update", 4, 44)]))
    assert results == [4, True]


def test_dts_clock_skew_still_consistent_per_session():
    cluster = make_cluster(scheme="dts", clock_skew=0.01)
    cluster.create_table("kv", num_shards=3, tuple_size=100)
    cluster.bulk_load("kv", [(k, k) for k in range(10)])
    session = cluster.session("node-2")
    run(cluster, simple_txn(session, [("update", 4, 44)]))
    results = run(cluster, simple_txn(session, [("read", 4)]))
    assert results == [44]


def test_shard_lock_mode_serializes_writers_per_shard(cluster):
    cluster.cc_mode = "shard_lock"
    session_a = cluster.session("node-1")
    session_b = cluster.session("node-2")
    times = {}

    def writer(name, session, key, delay):
        yield delay
        txn = yield from session.begin(label=name)
        yield from session.update(txn, "kv", key, {"v": name})
        yield 0.5  # hold the shard lock
        yield from session.commit(txn)
        times[name] = cluster.sim.now

    schema = cluster.tables["kv"]
    shard = schema.shard_for_key(20)
    # find another key in the same shard
    other = next(
        k for k in range(100, 10000) if schema.shard_for_key(k) == shard
    )
    cluster.bulk_load("kv", [(other, {"v": 0})])
    cluster.spawn(writer("a", session_a, 20, 0.0))
    cluster.spawn(writer("b", session_b, other, 0.01))
    cluster.sim.run()
    # Different rows, same shard: under shard locking b waits for a.
    assert times["b"] >= times["a"]


def test_dump_table_reflects_latest_committed(cluster):
    session = cluster.session("node-1")
    run(cluster, simple_txn(session, [("update", 0, {"v": "zero"}), ("delete", 1)]))
    dump = cluster.dump_table("kv")
    assert dump[0] == {"v": "zero"}
    assert 1 not in dump
    assert len(dump) == 99
