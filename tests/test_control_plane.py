"""Tests for the migration controller (control plane)."""

import pytest

from repro.cluster import Cluster
from repro.cluster.control_plane import MigrationController
from repro.config import ClusterConfig


@pytest.fixture
def cluster():
    c = Cluster(ClusterConfig(num_nodes=3))
    c.create_table("kv", num_shards=9, tuple_size=64)
    c.bulk_load("kv", [(k, {"v": k}) for k in range(300)])
    return c


def test_controller_rejects_unknown_approach(cluster):
    with pytest.raises(ValueError, match="unknown approach"):
        MigrationController(cluster, approach="teleport")


def test_plan_consolidation_covers_source(cluster):
    controller = MigrationController(cluster, approach="remus")
    plan = controller.plan_consolidation("node-1", table="kv", group_size=1)
    moved = [s for group, _s, _d in plan.batches for s in group]
    assert set(moved) == set(cluster.shards_on_node("node-1", table="kv"))


def test_execute_consolidation_drains_node(cluster):
    controller = MigrationController(cluster, approach="remus")
    plan = controller.plan_consolidation("node-1", table="kv")
    proc = controller.start(plan)
    cluster.run(until=30.0)
    assert proc.finished
    proc.result()
    assert cluster.shards_on_node("node-1", table="kv") == []
    assert len(cluster.dump_table("kv")) == 300
    assert controller.completed_plans == [plan]


def test_plan_balance_spreads_over_targets(cluster):
    controller = MigrationController(cluster, approach="remus")
    plan = controller.plan_balance("node-2", fraction=1.0, group_size=2)
    destinations = {dest for _g, _s, dest in plan.batches}
    assert "node-2" not in destinations
    assert destinations <= {"node-1", "node-3"}


def test_plan_scale_out_moves_groups(cluster):
    cluster.add_node("node-4")
    controller = MigrationController(cluster, approach="remus")
    groups = [[s] for s in cluster.shards_on_node("node-1", table="kv")[:2]]
    plan = controller.plan_scale_out("node-1", "node-4", groups)
    proc = controller.start(plan)
    cluster.run(until=30.0)
    assert proc.finished
    for group in groups:
        for shard in group:
            assert cluster.shard_owner(shard) == "node-4"


def test_busiest_node_detects_hotspot(cluster):
    # Drive CPU work on node-3 only.
    node = cluster.nodes["node-3"]

    def burn():
        for _ in range(50):
            yield node.cpu.use(0.01)

    cluster.spawn(burn())
    cluster.run(until=1.0)
    controller = MigrationController(cluster, approach="remus")
    assert controller.busiest_node(window=1.0) == "node-3"


def test_controller_works_with_baseline_approaches(cluster):
    controller = MigrationController(cluster, approach="wait_and_remaster")
    plan = controller.plan_consolidation("node-1", table="kv", group_size=3)
    proc = controller.start(plan)
    cluster.run(until=30.0)
    assert proc.finished
    assert cluster.shards_on_node("node-1", table="kv") == []
