"""End-to-end invariants: no lost updates, SI consistency across migration.

The canonical SI check: concurrent read-modify-write increments with retry
must never lose an update — the final counter values must sum to exactly the
number of committed increment transactions — including while Remus migrates
the shards the counters live in.
"""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.migration import MigrationPlan, RemusMigration, run_plan
from repro.txn.errors import TransactionError
from repro.workloads.client import run_transaction


def increment_body(key):
    def body(session, txn):
        row = yield from session.read(txn, "counters", key)
        yield from session.update(txn, "counters", key, {"n": row["n"] + 1})

    return body


def run_counter_workload(cluster, num_keys, num_clients, duration, migrate=False):
    committed = {"count": 0}

    def client(client_id):
        rng = cluster.sim.rng("counter-{}".format(client_id))
        session = cluster.session(
            cluster.node_ids()[client_id % len(cluster.node_ids())]
        )

        def loop():
            while cluster.sim.now < duration:
                key = rng.randint(0, num_keys - 1)
                ok, _err = yield from run_transaction(
                    session, increment_body(key), label="inc"
                )
                if ok:
                    committed["count"] += 1
                yield 0.001

        return loop()

    for i in range(num_clients):
        cluster.spawn(client(i))

    migration_proc = None
    if migrate:
        def migrate_all():
            yield duration * 0.2
            shards = cluster.shards_on_node("node-1", table="counters")
            batches = [([s], "node-1", "node-2") for s in shards]
            plan = MigrationPlan(RemusMigration, batches)
            yield from run_plan(cluster, plan)

        migration_proc = cluster.spawn(migrate_all(), name="migration")

    cluster.run(until=duration + 5.0)
    if migration_proc is not None:
        assert migration_proc.finished
        migration_proc.result()
    return committed["count"]


def check_counter_sum(cluster, num_keys, expected_increments):
    dump = cluster.dump_table("counters")
    assert len(dump) == num_keys
    total = sum(row["n"] for row in dump.values())
    assert total == expected_increments, (total, expected_increments)


@pytest.mark.parametrize("migrate", [False, True])
def test_no_lost_updates_under_contention(migrate):
    cluster = Cluster(ClusterConfig(num_nodes=3))
    cluster.create_table("counters", num_shards=6, tuple_size=64)
    num_keys = 20
    cluster.bulk_load("counters", [(k, {"n": 0}) for k in range(num_keys)])
    committed = run_counter_workload(
        cluster, num_keys, num_clients=8, duration=2.0, migrate=migrate
    )
    assert committed > 100
    check_counter_sum(cluster, num_keys, committed)
    crashes = [(p.name, e) for p, e in cluster.sim.failed_processes]
    assert not crashes, crashes


def test_no_lost_updates_with_gts_scheme():
    cluster = Cluster(ClusterConfig(num_nodes=3, timestamp_scheme="gts"))
    cluster.create_table("counters", num_shards=4, tuple_size=64)
    cluster.bulk_load("counters", [(k, {"n": 0}) for k in range(10)])
    committed = run_counter_workload(cluster, 10, num_clients=6, duration=1.0)
    assert committed > 50
    check_counter_sum(cluster, 10, committed)


def test_no_lost_updates_with_clock_skew():
    cluster = Cluster(ClusterConfig(num_nodes=3, clock_skew=0.005))
    cluster.create_table("counters", num_shards=4, tuple_size=64)
    cluster.bulk_load("counters", [(k, {"n": 0}) for k in range(10)])
    committed = run_counter_workload(
        cluster, 10, num_clients=6, duration=1.5, migrate=True
    )
    assert committed > 50
    check_counter_sum(cluster, 10, committed)


def test_read_only_scan_is_transactionally_consistent_during_migration():
    """Repeated full scans during a migration always see a complete table."""
    cluster = Cluster(ClusterConfig(num_nodes=3))
    cluster.create_table("counters", num_shards=6, tuple_size=64)
    num_keys = 200
    cluster.bulk_load("counters", [(k, {"n": 0}) for k in range(num_keys)])
    session = cluster.session("node-3")
    scans = []

    def scanner():
        while cluster.sim.now < 3.0:
            txn = yield from session.begin(label="scan")
            keys = yield from session.scan_table(txn, "counters")
            try:
                yield from session.commit(txn)
                scans.append(len(keys))
            except TransactionError:
                yield from session.abort(txn)
            yield 0.05

    def migrate():
        yield 0.2
        shards = cluster.shards_on_node("node-1", table="counters")
        plan = MigrationPlan(RemusMigration, [(shards, "node-1", "node-2")])
        yield from run_plan(cluster, plan)

    cluster.spawn(scanner())
    proc = cluster.spawn(migrate())
    cluster.run(until=10.0)
    assert proc.finished
    assert len(scans) > 10
    assert all(count == num_keys for count in scans), set(scans)
