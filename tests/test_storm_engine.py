"""Units for the storm-scale machinery: arrival schedules + partitioned loop.

Two subsystems power ``repro bench --cluster``:

- :class:`repro.workloads.batch.ArrivalSchedule` — the vectorized
  population arrival generator. The properties that make the batch and
  per-client execution modes byte-identical are pinned here directly:
  deterministic draw order, globally unique strictly increasing arrival
  instants, counted (never silent) batch-cap overflow, ramp interpolation
  and hot-key drift as a pure rank rotation.
- :class:`repro.sim.partition.PartitionedSimulator` — the kernel heap
  sharded by node group. Pinned: merged global ``(time, seq)`` order in the
  degenerate (zero-lookahead) case, windowed drain order, ``run(until)``
  boundary semantics, arrival rehoming via ``schedule_for_node``, and the
  topology preconditions (``for_topology`` rejects contended topologies and
  zero inter-partition latency).
"""

import pytest

from repro.sim.errors import SimulationError
from repro.sim.events import At
from repro.sim.kernel import Simulator
from repro.sim.partition import (
    CONTROL_PARTITION,
    PartitionedSimulator,
    partition_lookahead,
    partitions_from_topology,
)
from repro.sim.topology import make_topology
from repro.config import TierProfiles
from repro.workloads.batch import ArrivalSchedule, PopulationConfig
from repro.workloads.zipf import ZipfGenerator


def _stream(seed=0, label="storm-arrivals"):
    return Simulator(seed=seed).rng(label)


def _schedule(seed=0, population=1000, tick=0.05, cap=64, **config_kwargs):
    config = PopulationConfig(**config_kwargs)
    return ArrivalSchedule(_stream(seed), config, population, tick, cap)


# ----------------------------------------------------------------------
# RNG primitives
# ----------------------------------------------------------------------
def test_poisson_deterministic_and_seeded():
    a = [_stream(7).poisson(3.5) for _ in range(1)][0]
    b = _stream(7).poisson(3.5)
    assert a == b
    assert _stream(8).poisson(3.5) != a or _stream(9).poisson(3.5) != a


def test_poisson_mean_tracks_parameter():
    rng = _stream(0)
    for mean in (0.5, 4.0, 20.0, 200.0):  # crosses the normal-approx cutoff
        draws = [rng.poisson(mean) for _ in range(2000)]
        assert all(x >= 0 for x in draws)
        average = sum(draws) / len(draws)
        assert abs(average - mean) < max(0.2, mean * 0.1)
    assert rng.poisson(0.0) == 0
    assert rng.poisson(-1.0) == 0


def test_zipf_sample_many_matches_repeated_sample():
    zipf = ZipfGenerator(500, 0.99)
    many = zipf.sample_many(_stream(3), 200)
    one_by_one = []
    rng = _stream(3)
    for _ in range(200):
        one_by_one.append(zipf.sample(rng))
    assert many == one_by_one


# ----------------------------------------------------------------------
# ArrivalSchedule
# ----------------------------------------------------------------------
def test_schedule_is_deterministic_per_seed():
    first = [
        (batch.times, batch.clients, batch.keys, batch.reads, batch.values)
        for batch in _schedule(seed=5).ticks(3.0)
    ]
    second = [
        (batch.times, batch.clients, batch.keys, batch.reads, batch.values)
        for batch in _schedule(seed=5).ticks(3.0)
    ]
    assert first == second
    assert any(batch[0] for batch in first), "expected some arrivals"


def test_arrival_times_strictly_increasing_and_bounded():
    schedule = _schedule(seed=1, population=5000, cap=10_000)
    times = []
    for batch in schedule.ticks(2.0):
        times.extend(batch.times)
    assert times, "expected arrivals"
    assert all(0.0 <= t < 2.0 for t in times)
    assert all(b > a for a, b in zip(times, times[1:])), (
        "arrival instants must be globally unique and strictly increasing — "
        "this is what lets batch and per-client dispatch agree on order"
    )


def test_batch_cap_overflow_is_counted_not_silent():
    # Mean ~50 arrivals/tick against a cap of 8: heavy, counted overflow.
    schedule = _schedule(seed=2, population=5000, rate_per_client=0.2, cap=8)
    total = 0
    for batch in schedule.ticks(1.0):
        assert len(batch) <= 8
        total += len(batch)
    assert schedule.capped_arrivals > 0
    assert schedule.generated_arrivals == total


def test_rate_multiplier_piecewise_linear():
    schedule = _schedule(ramps=((1.0, 1.0), (3.0, 5.0), (4.0, 2.0)))
    assert schedule.rate_multiplier(0.0) == 1.0  # clamped before first point
    assert schedule.rate_multiplier(1.0) == 1.0
    assert schedule.rate_multiplier(2.0) == pytest.approx(3.0)  # midpoint
    assert schedule.rate_multiplier(3.5) == pytest.approx(3.5)
    assert schedule.rate_multiplier(9.0) == 2.0  # clamped after last point


def test_flash_crowd_ramp_scales_arrivals():
    flat = _schedule(seed=4, population=4000, cap=100_000)
    crowd = _schedule(
        seed=4, population=4000, cap=100_000, ramps=((0.0, 4.0), (4.0, 4.0))
    )
    flat_count = sum(len(b) for b in flat.ticks(4.0))
    crowd_count = sum(len(b) for b in crowd.ticks(4.0))
    assert crowd_count > 2 * flat_count


def test_hot_key_drift_is_a_rank_rotation():
    still = _schedule(seed=6, num_tuples=1000)
    drifting = _schedule(seed=6, num_tuples=1000, drift_keys_per_sec=40.0)
    t0 = 0.0  # accumulated exactly as ArrivalSchedule.ticks accumulates it
    for a, b in zip(still.ticks(3.0), drifting.ticks(3.0)):
        shift = int(40.0 * t0)
        assert b.keys == [(k + shift) % 1000 for k in a.keys]
        assert b.times == a.times
        assert b.clients == a.clients
        t0 += still.tick


# ----------------------------------------------------------------------
# The At waitable
# ----------------------------------------------------------------------
def test_at_wakes_process_at_exact_absolute_instant():
    sim = Simulator(seed=0)
    log = []

    def proc():
        yield At(0.5)
        log.append(sim.now)
        yield At(0.5 + 0.25)
        log.append(sim.now)

    sim.spawn(proc(), name="at")
    sim.run()
    assert log == [0.5, 0.75]


# ----------------------------------------------------------------------
# PartitionedSimulator
# ----------------------------------------------------------------------
def _multi_az(num_nodes=6, contended=False, profiles=None):
    node_ids = ["node-{}".format(i + 1) for i in range(num_nodes)]
    return make_topology(
        "multi_az",
        node_ids,
        profiles or TierProfiles().as_profiles(),
        contended=contended,
    )


def test_partitions_one_per_az_with_positive_lookahead():
    topology = _multi_az()
    assignment = partitions_from_topology(topology)
    assert assignment == {
        "node-1": 1, "node-2": 1, "node-3": 1,
        "node-4": 2, "node-5": 2, "node-6": 2,
    }
    assert partition_lookahead(topology, assignment) == pytest.approx(
        TierProfiles().region_latency
    )


def test_for_topology_rejects_contended():
    with pytest.raises(SimulationError):
        PartitionedSimulator.for_topology(_multi_az(contended=True))


def test_for_topology_rejects_zero_lookahead():
    profiles = TierProfiles(region_latency=0.0).as_profiles()
    with pytest.raises(SimulationError):
        PartitionedSimulator.for_topology(_multi_az(profiles=profiles))


def test_zero_lookahead_constructor_matches_global_order():
    """With lookahead 0 every window degenerates to a merged single-instant
    drain, so the dispatch order must equal the plain simulator's."""

    def drive(sim, scopes):
        order = []
        for index, (delay, pid) in enumerate(scopes):
            if pid is None or not hasattr(sim, "partition_scope"):
                sim.schedule(delay, order.append, index)
            else:
                with sim.partition_scope(pid):
                    sim.schedule(delay, order.append, index)
        sim.run()
        return order

    scopes = [(0.003, 1), (0.001, 2), (0.002, None), (0.001, 1), (0.0, 2)]
    plain = drive(Simulator(seed=0), [(d, None) for d, _ in scopes])
    sharded = drive(
        PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.0), scopes
    )
    assert sharded == plain == [4, 1, 3, 2, 0]


def test_windowed_drain_runs_partitions_in_order():
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.01)
    order = []
    with sim.partition_scope(1):
        sim.schedule(0.001, order.append, "p1-early")
        sim.schedule(0.0015, order.append, "p1-late")
    with sim.partition_scope(2):
        sim.schedule(0.0012, order.append, "p2-mid")
    sim.run()
    # One window [0.001, 0.011): partition 1 drains fully before partition 2
    # — the documented conservative relaxation of global time order.
    assert order == ["p1-early", "p1-late", "p2-mid"]
    assert sim.now == pytest.approx(0.0015)


def test_run_until_boundary_event_executes_and_clock_pins():
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.01)
    fired = []
    with sim.partition_scope(1):
        sim.schedule(1.0, fired.append, "at-boundary")
        sim.schedule(1.5, fired.append, "beyond")
    sim.run(until=1.0)
    assert fired == ["at-boundary"]
    assert sim.now == 1.0
    sim.run()
    assert fired == ["at-boundary", "beyond"]


def test_schedule_for_node_rehomes_to_destination_partition():
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.01)
    sim.assign_node("node-a", 1)
    sim.assign_node("node-b", 2)
    seen = []
    with sim.partition_scope(1):
        sim.schedule_for_node("node-b", 0.02, lambda: seen.append(sim._current))
    assert [len(heap) for heap in sim._heaps] == [0, 0, 1]
    sim.run()
    # The callback executed under the destination's partition, so its own
    # follow-up events would land there too.
    assert seen == [2]
    assert sim.node_partition("node-c") == CONTROL_PARTITION


def test_spawn_on_node_homes_the_process():
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.01)
    sim.assign_node("node-a", 2)
    current = []

    def proc():
        yield 0.001
        current.append(sim._current)

    sim.spawn_on_node("node-a", proc(), name="homed")
    sim.run()
    assert current == [2]


def test_pending_events_and_cancel_across_subheaps():
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.01)
    with sim.partition_scope(1):
        keep = sim.schedule(0.1, lambda: None)
        drop = sim.schedule(0.2, lambda: None)
    with sim.partition_scope(2):
        sim.schedule(0.3, lambda: None)
    assert sim.pending_events == 3
    sim.cancel(drop)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0
    assert keep[2] is None or True  # run consumed it; no dangling state


def test_step_executes_globally_next_event():
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.01)
    order = []
    with sim.partition_scope(2):
        sim.schedule(0.001, order.append, "first")
    with sim.partition_scope(1):
        sim.schedule(0.002, order.append, "second")
    assert sim.step() and order == ["first"]
    assert sim.step() and order == ["first", "second"]
    assert not sim.step()


# ----------------------------------------------------------------------
# PartitionedSimulator edges (regression hardening)
# ----------------------------------------------------------------------
def test_cancel_of_event_in_non_local_subheap_mid_run():
    """A callback in one partition cancels an entry sitting in *another*
    partition's subheap; the lazy pop must skip it and keep the cancelled
    accounting exact."""
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.01)
    fired = []
    with sim.partition_scope(2):
        victim = sim.schedule(0.005, fired.append, "victim")
    with sim.partition_scope(1):
        sim.schedule(0.001, lambda: sim.cancel(victim))
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_pending_events_consistent_mid_window_across_subheaps():
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=1.0)
    seen = []
    with sim.partition_scope(1):
        sim.schedule(0.1, lambda: seen.append(sim.pending_events))
    with sim.partition_scope(2):
        sim.schedule(0.2, lambda: None)
        sim.schedule(5.0, lambda: None)
    sim.run(until=0.5)
    # While the partition-1 callback ran, partition 2 still held both of
    # its events — pending_events must count across subheaps, not just the
    # draining one.
    assert seen == [2]
    # The 5.0 event lies beyond until and survives the run.
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0


def test_step_at_window_boundary_follows_global_seq_order():
    """step() must execute same-instant events at an exact window boundary
    (t0 + lookahead) in global (time, seq) order, even when the windowed
    drain would visit their partitions in id order."""
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.01)
    order = []
    with sim.partition_scope(1):
        sim.schedule(0.0, order.append, "opens-window")
    with sim.partition_scope(2):
        sim.schedule(0.01, order.append, "boundary-p2")  # scheduled first
    with sim.partition_scope(1):
        sim.schedule(0.01, order.append, "boundary-p1")
    while sim.step():
        pass
    assert order == ["opens-window", "boundary-p2", "boundary-p1"]
    assert sim.now == pytest.approx(0.01)


def test_events_drained_counts_executions_not_cancellations():
    sim = PartitionedSimulator(seed=0, num_partitions=2, lookahead=0.01)
    with sim.partition_scope(1):
        sim.schedule(0.001, lambda: None)
        dropped = sim.schedule(0.002, lambda: None)
    sim.cancel(dropped)
    sim.run()
    assert sim.events_drained == 1


# ----------------------------------------------------------------------
# ParallelSimulator: ownership, barrier outboxes, reflection
# ----------------------------------------------------------------------
from repro.sim.parallel import ParallelSimulator, deal_partitions


def test_parallel_simulator_parks_non_owned_partitions():
    sim = ParallelSimulator(seed=0, num_partitions=2, lookahead=0.01, owned=[1])
    fired = []
    with sim.partition_scope(1):
        sim.schedule(0.001, fired.append, "mine")
    with sim.partition_scope(2):
        sim.schedule(0.002, fired.append, "foreign")
    sim.run(until=1.0)
    # The foreign event belongs to another worker's drain: parked, never
    # executed here, still visible in the pending count.
    assert fired == ["mine"]
    assert sim.now == 1.0
    assert sim.pending_events == 1


def test_parallel_outbox_exchanges_at_window_barrier():
    sim = ParallelSimulator(seed=0, num_partitions=2, lookahead=0.01)
    sim.assign_node("node-a", 1)
    sim.assign_node("node-b", 2)
    seen = []

    def send():
        sim.schedule_for_node(
            "node-b", 0.02, lambda: seen.append((round(sim.now, 6), sim._current))
        )
        # Buffered, not yet in the destination subheap: the exchange
        # happens at the window barrier.
        assert len(sim._heaps[2]) == 0
        assert len(sim._outboxes[2]) == 1

    with sim.partition_scope(1):
        sim.schedule(0.001, send)
    sim.run()
    assert seen == [(0.021, 2)]  # delivered under the destination partition
    assert sim.drain.barrier_msgs == 1
    assert sim.drain.barrier_exchanges == 1
    assert sim.drain.reflected_msgs == 0
    assert sim.drain.windows >= 2


def test_parallel_reflects_sends_to_partitions_owned_elsewhere():
    sim = ParallelSimulator(seed=0, num_partitions=2, lookahead=0.01, owned=[1])
    sim.assign_node("node-a", 1)
    sim.assign_node("node-b", 2)
    seen = []

    def send():
        sim.schedule_for_node(
            "node-b", 0.02, lambda: seen.append((round(sim.now, 6), sim._current))
        )

    with sim.partition_scope(1):
        sim.schedule(0.001, send)
    sim.run()
    # Same instant, but executed under the *sender's* partition — and the
    # envelope violation is counted so harnesses can assert it never fires.
    assert seen == [(0.021, 1)]
    assert sim.drain.reflected_msgs == 1
    assert sim.drain.barrier_msgs == 0


def test_parallel_cancel_of_outbox_entry():
    sim = ParallelSimulator(seed=0, num_partitions=2, lookahead=0.01)
    sim.assign_node("node-b", 2)
    fired = []

    def send():
        entry = sim.schedule_for_node("node-b", 0.02, fired.append, "x")
        sim.cancel(entry)

    with sim.partition_scope(1):
        sim.schedule(0.001, send)
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_parallel_own_validates_partition_ids():
    with pytest.raises(SimulationError):
        ParallelSimulator(seed=0, num_partitions=2, owned=[3])
    with pytest.raises(SimulationError):
        ParallelSimulator(seed=0, num_partitions=2, owned=[])


def test_deal_partitions_round_robin_and_bounds():
    assert deal_partitions(10, 4) == [[1, 5, 9], [2, 6, 10], [3, 7], [4, 8]]
    assert deal_partitions(3, 8) == [[1], [2], [3]]
    assert deal_partitions(4, 1) == [[1, 2, 3, 4]]
    with pytest.raises(ValueError):
        deal_partitions(0, 2)
