"""Unit tests for the streaming snapshot copy (§3.2)."""

import pytest

from repro.cluster import Cluster
from repro.cluster.shardmap import RESERVED_MIN_TS
from repro.config import ClusterConfig
from repro.migration.base import MigrationStats
from repro.migration.snapshot_copy import copy_group_snapshot, copy_shard_snapshot


@pytest.fixture
def cluster():
    c = Cluster(ClusterConfig(num_nodes=2))
    c.create_table("t", num_shards=2, tuple_size=200)
    c.bulk_load("t", [(k, {"v": k}) for k in range(100)])
    return c


def snapshot_ts(cluster):
    return cluster.oracle.local_now("node-1")


def shard_on(cluster, node):
    """A shard on ``node`` that actually holds data."""
    return next(
        s
        for s in cluster.shards_on_node(node, table="t")
        if cluster.nodes[node].heap_for(s).key_count > 0
    )


def run(cluster, gen):
    return cluster.sim.run_until_complete(cluster.spawn(gen))


def test_copy_moves_visible_tuples(cluster):
    shard = shard_on(cluster, "node-1")
    stats = MigrationStats()
    ts = snapshot_ts(cluster)
    copied = run(
        cluster,
        copy_shard_snapshot(cluster, shard, "node-1", "node-2", ts, stats),
    )
    source_keys = set(cluster.nodes["node-1"].heap_for(shard).keys())
    dest_keys = set(cluster.nodes["node-2"].heap_for(shard).keys())
    assert copied == len(source_keys)
    assert dest_keys == source_keys
    assert stats.tuples_copied == copied
    assert stats.bytes_copied == copied * 200


def test_copy_installs_at_reserved_min_timestamp(cluster):
    shard = shard_on(cluster, "node-1")
    ts = snapshot_ts(cluster)
    run(
        cluster,
        copy_shard_snapshot(cluster, shard, "node-1", "node-2", ts, MigrationStats()),
    )
    dest = cluster.nodes["node-2"]
    heap = dest.heap_for(shard)
    key = next(iter(heap.keys()))
    version = heap.chain(key)[0]
    assert dest.clog.commit_ts(version.xmin) == RESERVED_MIN_TS


def test_copy_excludes_post_snapshot_commits(cluster):
    shard = shard_on(cluster, "node-1")
    ts = snapshot_ts(cluster)
    # A commit after the snapshot timestamp must not appear in the copy.
    session = cluster.session("node-1")
    key = sorted(cluster.nodes["node-1"].heap_for(shard).keys())[0]

    def writer():
        txn = yield from session.begin()
        yield from session.update(txn, "t", key, {"v": "after-snapshot"})
        yield from session.commit(txn)

    run(cluster, writer())
    run(
        cluster,
        copy_shard_snapshot(cluster, shard, "node-1", "node-2", ts, MigrationStats()),
    )
    dest_heap = cluster.nodes["node-2"].heap_for(shard)
    assert dest_heap.chain(key)[0].value == {"v": key}  # the old value


def test_group_copy_copies_all_shards_in_parallel(cluster):
    shards = cluster.tables["t"].shard_ids()
    owners = {s: cluster.shard_owner(s) for s in shards}
    node1_shards = [s for s, o in owners.items() if o == "node-1"]
    stats = MigrationStats()
    ts = snapshot_ts(cluster)
    total = run(
        cluster,
        copy_group_snapshot(cluster, node1_shards, "node-1", "node-2", ts, stats),
    )
    expected = sum(
        cluster.nodes["node-1"].heap_for(s).key_count for s in node1_shards
    )
    assert total == expected


def test_group_copy_raises_lowest_wounded_shard_abort(cluster, monkeypatch):
    """Two parallel shard copies fail: the abort that surfaces must be the
    lowest shard id's, regardless of which copy failed first in time."""
    from repro.migration import snapshot_copy
    from repro.txn.errors import RpcAbort

    shards = sorted(cluster.tables["t"].shard_ids())
    assert len(shards) >= 2
    raised = {}

    def wounded_copy(cluster_, shard_id, source, dest, snapshot_ts_, stats_):
        exc = RpcAbort("destination unreachable from {}".format(shard_id))
        raised[shard_id] = exc
        # The *higher* shard fails first, so a first-failure-wins
        # implementation would raise the wrong abort.
        yield 0.01 if shard_id == shards[0] else 0.0
        raise exc

    monkeypatch.setattr(snapshot_copy, "copy_shard_snapshot", wounded_copy)
    proc = cluster.spawn(
        copy_group_snapshot(
            cluster, shards, "node-1", "node-2", 0, MigrationStats()
        )
    )
    with pytest.raises(RpcAbort) as info:
        cluster.sim.run_until_complete(proc)
    assert info.value is raised[shards[0]]


def test_copy_takes_time_proportional_to_tuples(cluster):
    from repro.config import CostModel

    slow = Cluster(
        ClusterConfig(num_nodes=2, costs=CostModel(snapshot_scan_per_tuple=1e-3))
    )
    slow.create_table("t", num_shards=1, tuple_size=100)
    slow.bulk_load("t", [(k, k) for k in range(500)])
    shard = slow.tables["t"].shard_ids()[0]
    source = slow.shard_owner(shard)
    dest = "node-2" if source == "node-1" else "node-1"
    ts = slow.oracle.local_now(source)
    start = slow.sim.now
    slow.sim.run_until_complete(
        slow.spawn(copy_shard_snapshot(slow, shard, source, dest, ts, MigrationStats()))
    )
    assert slow.sim.now - start >= 500 * 1e-3 * 0.9
