"""Tests for the TPC-C read-only transactions and distributed execution."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.workloads.tpcc import TpccConfig, TpccWorkload


@pytest.fixture
def setup():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    workload = TpccWorkload(
        cluster,
        TpccConfig(num_warehouses=3, districts_per_warehouse=2,
                   customers_per_district=6, items=10),
    )
    workload.create()
    return cluster, workload


def run_body(cluster, workload, body, node="node-1", label="t"):
    session = cluster.session(node)

    def runner():
        txn = yield from session.begin(label=label)
        yield from body(session, txn)
        yield from session.commit(txn)
        return txn

    return cluster.sim.run_until_complete(cluster.spawn(runner()))


def test_order_status_reads_latest_order(setup):
    cluster, workload = setup
    rng = cluster.sim.rng("os")
    txn = run_body(cluster, workload, workload.order_status_body(rng, home=1))
    assert txn.op_count >= 3  # customer + district + order (+ lines)
    assert not txn.wrote_anything


def test_stock_level_is_read_only(setup):
    cluster, workload = setup
    rng = cluster.sim.rng("sl")
    before = cluster.dump_table("stock")
    txn = run_body(cluster, workload, workload.stock_level_body(rng, home=2))
    assert not txn.wrote_anything
    assert cluster.dump_table("stock") == before


def test_remote_payment_is_distributed(setup):
    cluster, workload = setup

    class ForceRemote:
        def random(self):
            return 0.0  # always below remote_txn_prob

        def randint(self, a, b):
            return b  # picks the highest warehouse: never the home (1)

        def uniform(self, a, b):
            return a

        def sample(self, population, k):
            return list(population)[:k]

    run_body(
        cluster, workload, workload.payment_body(ForceRemote(), home=1), label="pay"
    )
    # Home warehouse 1 and remote warehouse share no node at this scale only
    # if placement differs; assert the customer update went to a different
    # warehouse than the payment's home.
    history = cluster.dump_table("history")
    assert len(history) == 1
    # The remote customer's balance changed in a warehouse != 1.
    customers = cluster.dump_table("customer")
    touched = [k for k, v in customers.items() if v["payments"] > 0]
    assert touched and all(k[0] != 1 for k in touched)


def test_new_order_with_remote_supply_creates_distributed_txn(setup):
    cluster, workload = setup

    class ForceRemote:
        def random(self):
            return 0.0

        def randint(self, a, b):
            return b  # highest warehouse / largest ol_cnt: never home (1)

        def sample(self, population, k):
            return list(population)[:k]

    txn = run_body(
        cluster, workload, workload.new_order_body(ForceRemote(), home=1), label="no"
    )
    # Stock updates went to the remote warehouse: more than one participant.
    assert txn.is_distributed
