"""Fixture corpus for the simrace rules (SIM101–SIM104).

Every ``bad_simNNN_*.py`` fixture must be flagged with exactly the rule its
filename encodes when linted at a protocol path; every ``good_*.py``
fixture must come out clean. Zero false negatives and zero false positives
on this corpus is the contract the CI job enforces — a heuristic change
that starts missing a bad fixture or flagging a good one fails here, not
in a noisy run over the live tree.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import analyze_source, default_config

CORPUS = Path(__file__).parent / "fixtures" / "simrace"
BAD = sorted(CORPUS.glob("bad_*.py"))
GOOD = sorted(CORPUS.glob("good_*.py"))


def lint_fixture(path):
    source = path.read_text(encoding="utf-8")
    # Lint under a protocol path so the SIM10x include scopes apply.
    return analyze_source(
        source, path="src/repro/txn/{}".format(path.name), config=default_config()
    )


def expected_code(path):
    match = re.match(r"(?:bad|good)_(sim\d+)_", path.name)
    assert match is not None, "unparseable fixture name: {}".format(path.name)
    return match.group(1).upper()


def test_corpus_is_present():
    assert len(BAD) >= 7, "bad corpus shrank: {}".format([p.name for p in BAD])
    assert len(GOOD) >= 5, "good corpus shrank: {}".format([p.name for p in GOOD])
    covered = {expected_code(p) for p in BAD}
    assert covered == {"SIM101", "SIM102", "SIM103", "SIM104"}


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.name)
def test_bad_fixture_is_flagged(path):
    code = expected_code(path)
    violations = lint_fixture(path)
    codes = {v.rule for v in violations}
    assert code in codes, "false negative: {} not flagged in {} (got {})".format(
        code, path.name, violations
    )
    extra = codes - {code}
    assert not extra, "fixture {} trips unrelated rules: {}".format(path.name, extra)


@pytest.mark.parametrize("path", GOOD, ids=lambda p: p.name)
def test_good_fixture_is_clean(path):
    violations = lint_fixture(path)
    assert violations == [], "false positives in {}: {}".format(path.name, violations)
