"""The fast paths must be invisible in simulated time.

Every optimization behind ``repro.fastpath`` — hint bits, snapshot caching,
group-commit WAL batching, the uncontended-lock fast path — claims to be
*semantics-preserving*: it may change how much wall-clock the host burns,
never what happens in the simulation. These tests hold it to that claim at
two levels:

- whole experiments: each (scenario, approach, seed) cell is run with the
  fast paths on and with every flag off, and the canonical-JSON result
  payloads must be byte-identical;
- a raw cluster run: the per-commit (time, label, latency) timeline and the
  final table dump must match tuple-for-tuple.

The profiler makes the same promise (it observes dispatches, it never
schedules), so it gets the same treatment.
"""

import pytest

from repro import fastpath
from repro.bench.sweep import SMOKE_OVERRIDES, canonical_json
from repro.experiments import ExperimentResult, registry
from repro.profiling import Profiler

#: One cell per migration approach, crossing scenario boundaries.
_CELLS = [
    ("load_balancing", "squall"),
    ("high_contention", "lock_and_abort"),
    ("scale_out", "wait_and_remaster"),
    ("hybrid_a", "remus"),
]
_SEEDS = [0, 1, 2]


def _run_cell(scenario, approach, seed):
    overrides = SMOKE_OVERRIDES.get(scenario, {})
    return registry.run(
        registry.get(scenario), approach=approach, seed=seed, **overrides
    )


@pytest.mark.parametrize("scenario,approach", _CELLS)
def test_experiment_timeline_identical_with_fastpath_off(scenario, approach):
    for seed in _SEEDS:
        fast = _run_cell(scenario, approach, seed)
        with fastpath.all_disabled():
            slow = _run_cell(scenario, approach, seed)
        assert canonical_json(fast.to_dict()) == canonical_json(slow.to_dict()), (
            "fast path changed the {}/{} timeline at seed {}".format(
                scenario, approach, seed
            )
        )
        # The payload must survive serialization exactly (sweep workers and
        # BENCH_experiments.json depend on this round-trip).
        restored = ExperimentResult.from_dict(fast.to_dict())
        assert restored.to_dict() == fast.to_dict()


#: Only the migration data-path flags on — attributes any divergence to the
#: indexed scan / routed pump / batched replay specifically, with the txn
#: fast paths held at their legacy behavior.
_MIGRATION_ONLY = {
    "clog_hints": False,
    "snapshot_cache": False,
    "group_commit": False,
    "lock_fastpath": False,
    "migration_scan": True,
    "migration_pump": True,
    "migration_replay": True,
}


@pytest.mark.parametrize("scenario,approach", _CELLS)
def test_migration_fastpath_alone_is_invisible(scenario, approach):
    for seed in _SEEDS:
        with fastpath.overridden(**_MIGRATION_ONLY):
            fast = _run_cell(scenario, approach, seed)
        with fastpath.all_disabled():
            slow = _run_cell(scenario, approach, seed)
        assert canonical_json(fast.to_dict()) == canonical_json(slow.to_dict()), (
            "migration fast path changed the {}/{} timeline at seed {}".format(
                scenario, approach, seed
            )
        )


def test_commit_timeline_identical_with_migration_fastpath_only():
    from tests.test_determinism import run_once

    with fastpath.overridden(**_MIGRATION_ONLY):
        fast_commits, fast_dump, fast_copied = run_once(seed=11)
    with fastpath.all_disabled():
        slow_commits, slow_dump, slow_copied = run_once(seed=11)
    assert fast_commits == slow_commits
    assert fast_dump == slow_dump
    assert fast_copied == slow_copied


def test_commit_timeline_identical_with_fastpath_off():
    """Tuple-level check: every commit time/latency and the final table."""
    from tests.test_determinism import run_once

    fast_commits, fast_dump, fast_copied = run_once(seed=11)
    with fastpath.all_disabled():
        slow_commits, slow_dump, slow_copied = run_once(seed=11)
    assert fast_commits == slow_commits
    assert fast_dump == slow_dump
    assert fast_copied == slow_copied


def test_flags_restored_after_override():
    before = fastpath.flags()
    with fastpath.all_disabled():
        assert not any(fastpath.flags().values())
    assert fastpath.flags() == before
    with pytest.raises(ValueError):
        fastpath.configure(warp_drive=True)


def test_profiler_does_not_perturb_the_timeline():
    baseline = _run_cell("load_balancing", "remus", 3)
    with Profiler() as profiler:
        profiled = _run_cell("load_balancing", "remus", 3)
    assert canonical_json(profiled.to_dict()) == canonical_json(baseline.to_dict())
    report = profiler.report()
    assert report["dispatches"] > 0
    assert report["subsystems"], "expected per-subsystem wall-clock attribution"


def test_profiler_rejects_nesting():
    from repro.sim.errors import SimulationError

    with Profiler():
        with pytest.raises(SimulationError):
            Profiler().__enter__()
