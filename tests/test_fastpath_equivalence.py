"""The fast paths must be invisible in simulated time.

Every optimization behind ``repro.fastpath`` — hint bits, snapshot caching,
group-commit WAL batching, the uncontended-lock fast path — claims to be
*semantics-preserving*: it may change how much wall-clock the host burns,
never what happens in the simulation. These tests hold it to that claim at
two levels:

- whole experiments: each (scenario, approach, seed) cell is run with the
  fast paths on and with every flag off, and the canonical-JSON result
  payloads must be byte-identical;
- a raw cluster run: the per-commit (time, label, latency) timeline and the
  final table dump must match tuple-for-tuple.

The profiler makes the same promise (it observes dispatches, it never
schedules), so it gets the same treatment.
"""

import pytest

from repro import fastpath
from repro.bench.sweep import SMOKE_OVERRIDES, canonical_json
from repro.experiments import ExperimentResult, registry
from repro.profiling import Profiler

#: One cell per migration approach, crossing scenario boundaries.
_CELLS = [
    ("load_balancing", "squall"),
    ("high_contention", "lock_and_abort"),
    ("scale_out", "wait_and_remaster"),
    ("hybrid_a", "remus"),
]
_SEEDS = [0, 1, 2]


def _run_cell(scenario, approach, seed):
    overrides = SMOKE_OVERRIDES.get(scenario, {})
    return registry.run(
        registry.get(scenario), approach=approach, seed=seed, **overrides
    )


@pytest.mark.parametrize("scenario,approach", _CELLS)
def test_experiment_timeline_identical_with_fastpath_off(scenario, approach):
    for seed in _SEEDS:
        fast = _run_cell(scenario, approach, seed)
        with fastpath.all_disabled():
            slow = _run_cell(scenario, approach, seed)
        assert canonical_json(fast.to_dict()) == canonical_json(slow.to_dict()), (
            "fast path changed the {}/{} timeline at seed {}".format(
                scenario, approach, seed
            )
        )
        # The payload must survive serialization exactly (sweep workers and
        # BENCH_experiments.json depend on this round-trip).
        restored = ExperimentResult.from_dict(fast.to_dict())
        assert restored.to_dict() == fast.to_dict()


#: Only the migration data-path flags on — attributes any divergence to the
#: indexed scan / routed pump / batched replay specifically, with the txn
#: fast paths held at their legacy behavior.
_MIGRATION_ONLY = {
    "clog_hints": False,
    "snapshot_cache": False,
    "group_commit": False,
    "lock_fastpath": False,
    "migration_scan": True,
    "migration_pump": True,
    "migration_replay": True,
}


@pytest.mark.parametrize("scenario,approach", _CELLS)
def test_migration_fastpath_alone_is_invisible(scenario, approach):
    for seed in _SEEDS:
        with fastpath.overridden(**_MIGRATION_ONLY):
            fast = _run_cell(scenario, approach, seed)
        with fastpath.all_disabled():
            slow = _run_cell(scenario, approach, seed)
        assert canonical_json(fast.to_dict()) == canonical_json(slow.to_dict()), (
            "migration fast path changed the {}/{} timeline at seed {}".format(
                scenario, approach, seed
            )
        )


def test_commit_timeline_identical_with_migration_fastpath_only():
    from tests.test_determinism import run_once

    with fastpath.overridden(**_MIGRATION_ONLY):
        fast_commits, fast_dump, fast_copied = run_once(seed=11)
    with fastpath.all_disabled():
        slow_commits, slow_dump, slow_copied = run_once(seed=11)
    assert fast_commits == slow_commits
    assert fast_dump == slow_dump
    assert fast_copied == slow_copied


def test_commit_timeline_identical_with_fastpath_off():
    """Tuple-level check: every commit time/latency and the final table."""
    from tests.test_determinism import run_once

    fast_commits, fast_dump, fast_copied = run_once(seed=11)
    with fastpath.all_disabled():
        slow_commits, slow_dump, slow_copied = run_once(seed=11)
    assert fast_commits == slow_commits
    assert fast_dump == slow_dump
    assert fast_copied == slow_copied


def test_flags_restored_after_override():
    before = fastpath.flags()
    with fastpath.all_disabled():
        assert not any(fastpath.flags().values())
    assert fastpath.flags() == before
    with pytest.raises(ValueError):
        fastpath.configure(warp_drive=True)


def test_profiler_does_not_perturb_the_timeline():
    baseline = _run_cell("load_balancing", "remus", 3)
    with Profiler() as profiler:
        profiled = _run_cell("load_balancing", "remus", 3)
    assert canonical_json(profiled.to_dict()) == canonical_json(baseline.to_dict())
    report = profiler.report()
    assert report["dispatches"] > 0
    assert report["subsystems"], "expected per-subsystem wall-clock attribution"


def test_profiler_rejects_nesting():
    from repro.sim.errors import SimulationError

    with Profiler():
        with pytest.raises(SimulationError):
            Profiler().__enter__()


# ----------------------------------------------------------------------
# Storm engine equivalence: batch workload + partitioned event loop
# ----------------------------------------------------------------------
def _storm_payload(mode, seed):
    """One small population storm on a 6-node multi-AZ cluster.

    ``mode``: ``per_client`` / ``batch`` / ``partitioned`` — the same three
    driving shapes ``repro bench --cluster`` measures, at equivalence scale.
    """
    from repro.cluster.cluster import Cluster
    from repro.config import ClusterConfig, TierProfiles
    from repro.sim.partition import PartitionedSimulator
    from repro.sim.topology import make_topology
    from repro.workloads.batch import TABLE, PopulationConfig, PopulationWorkload

    partitioned = mode == "partitioned"
    with fastpath.overridden(
        batch_workload=mode != "per_client", partitioned_loop=partitioned
    ):
        node_ids = ["node-{}".format(i + 1) for i in range(6)]
        topology = make_topology(
            "multi_az", node_ids, TierProfiles().as_profiles(), contended=False
        )
        config = ClusterConfig(
            num_nodes=6,
            topology=topology,
            storm_population=240,
            storm_arrival_tick=0.05,
            storm_batch_cap=64,
            seed=seed,
        )
        sim = None
        if partitioned:
            sim = PartitionedSimulator.for_topology(topology, seed=seed)
        cluster = Cluster(config, sim=sim)
        workload = PopulationWorkload(
            cluster,
            PopulationConfig(
                rate_per_client=0.1,
                num_tuples=240,
                num_shards=12,
                read_ratio=0.5,
                ramps=((0.0, 1.0), (3.0, 1.0), (4.0, 2.5)),
                drift_keys_per_sec=10.0,
            ),
        )
        workload.create()
        cluster.start_vacuum_daemons()
        workload.start(until=5.0)
        cluster.run(until=5.0)
        workload.stop()
        payload = {
            "commits": [
                (r.time, r.label, r.latency, r.weight)
                for r in cluster.metrics.commits
            ],
            "aborts": [
                (r.time, r.label, r.kind) for r in cluster.metrics.aborts
            ],
            "committed": workload.committed,
            "aborted": workload.aborted,
            "dispatched": workload.dispatched,
            "dump": sorted(cluster.dump_table(TABLE).items()),
        }
        assert workload.dispatched > 50, "equivalence storm too quiet to mean much"
        return payload


def _sorted_timeline(payload):
    """Time-sorted record form: the partitioned loop's identity guarantee.

    Within a lookahead window, partitions append metrics in drain order,
    not global time order — the record *sets* (and every derived metric)
    are identical, so identity is pinned over the time-sorted timeline.
    """
    return dict(
        payload,
        commits=sorted(payload["commits"]),
        aborts=sorted(payload["aborts"]),
    )


def _timeline_digest(payload):
    import hashlib

    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_workload_timeline_identical_to_per_client(seed):
    """The vectorized arrival engine is invisible: raw byte-for-byte."""
    batch = _storm_payload("batch", seed)
    per_client = _storm_payload("per_client", seed)
    assert canonical_json(batch) == canonical_json(per_client), (
        "batch workload changed the commit timeline at seed {}".format(seed)
    )


#: Pinned sorted-timeline digests of the partitioned run (== the single-loop
#: run's, asserted below). If a PR changes these *intentionally* (e.g. a cost
#: model change shifts every commit time), re-pin after verifying the
#: partitioned and single-loop digests still match each other.
_PARTITIONED_DIGESTS = {
    0: "266b766d64029906",
    1: "14f3531e278a8a11",
    2: "2656c8de5d6578b6",
}


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_partitioned_loop_timeline_identical_sorted(seed):
    single = _sorted_timeline(_storm_payload("batch", seed))
    windowed = _sorted_timeline(_storm_payload("partitioned", seed))
    assert canonical_json(single) == canonical_json(windowed), (
        "partitioned loop changed the sorted commit timeline at seed {}".format(seed)
    )
    digest = _timeline_digest(windowed)
    assert digest == _PARTITIONED_DIGESTS[seed], (
        "pinned storm digest drifted at seed {}: {} (re-pin only after "
        "verifying partitioned == single-loop)".format(seed, digest)
    )


# ----------------------------------------------------------------------
# Parallel window drain (fastpath.parallel_drain / repro.sim.parallel)
# ----------------------------------------------------------------------
from dataclasses import replace  # noqa: E402

from repro.bench.cluster_bench import (  # noqa: E402
    StormSpec,
    run_parallel_storm,
    run_storm,
    timeline_digest,
)

#: The partition-closed storm the parallel drain must replay byte-for-byte:
#: key-routed coordinators (single-node transactions), no migration, three
#: AZ partitions so a two-worker fan-out gives one worker a multi-partition
#: ownership set ({1, 3} vs {2}).
_PARALLEL_SPEC = StormSpec(
    name="storm_equiv_parallel",
    num_nodes=6,
    num_groups=3,
    population=240,
    rate_per_client=0.1,
    duration=5.0,
    tick=0.05,
    batch_cap=64,
    num_tuples=240,
    num_shards=12,
    read_ratio=0.5,
    zipf_theta=0.99,
    drift_keys_per_sec=10.0,
    ramps=((0.0, 1.0), (3.0, 1.0), (4.0, 2.5)),
    migrate_shards=0,
    migrate_at=0.0,
    seed=0,
    route_by_key=True,
)

#: Pinned digests of the merged parallel identity payload (== the
#: single-loop batch run's, asserted below). Re-pin only after verifying
#: the parallel and single-loop payloads still match each other.
_PARALLEL_DIGESTS = {
    0: "8ac5df2b81279b7d",
    1: "c524bb4fcbf52406",
    2: "f3f599ee084bbb6c",
}


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_parallel_drain_timeline_identical_to_single_loop(seed):
    """Multi-worker window drain == single loop, payload- and digest-wise."""
    spec = replace(_PARALLEL_SPEC, seed=seed)
    reference = run_storm(spec, "batch", collect_identity=True)["identity"]
    assert reference["dispatched"] > 50  # the storm actually stormed
    with fastpath.overridden(parallel_drain=True):
        merged = run_parallel_storm(spec, workers=2)
    identity = merged["identity"]
    assert canonical_json(identity) == canonical_json(reference), (
        "parallel drain changed the merged timeline at seed {}".format(seed)
    )
    # The envelope held: no worker sent into a partition owned elsewhere.
    assert merged["reflected_msgs"] == 0
    digest = timeline_digest(identity)
    assert digest == _PARALLEL_DIGESTS[seed], (
        "pinned parallel storm digest drifted at seed {}: {} (re-pin only "
        "after verifying parallel == single-loop)".format(seed, digest)
    )


def test_parallel_drain_defaults_off():
    """With the flag at its default, no pool is used — the storm runs as
    one in-process job owning every partition (the serial windowed drain)
    and still reproduces the pinned timeline."""
    assert fastpath.parallel_drain is False
    merged = run_parallel_storm(_PARALLEL_SPEC, workers=4)
    assert merged["pool_used"] is False
    assert merged["workers"] == 1
    assert timeline_digest(merged["identity"]) == _PARALLEL_DIGESTS[0]


def test_parallel_drain_serial_fallback_when_pool_unavailable(monkeypatch):
    """When the pool cannot start (sandboxed runners), the shuttle degrades
    to the serial windowed drain with byte-identical output — the same
    contract as the seed-sweep fallback."""
    import repro.sim.parallel as parallel_mod

    class _NoPool:
        @staticmethod
        def Pool(*args, **kwargs):
            raise OSError("semaphores unavailable")

    monkeypatch.setattr(parallel_mod, "multiprocessing", _NoPool)
    with fastpath.overridden(parallel_drain=True):
        merged = run_parallel_storm(_PARALLEL_SPEC, workers=2)
    assert merged["pool_used"] is False
    assert timeline_digest(merged["identity"]) == _PARALLEL_DIGESTS[0]
