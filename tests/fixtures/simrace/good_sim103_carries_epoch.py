"""Clean: the epoch fence rides in the send; the route is re-resolved.

``prepare`` carries the captured epoch so the receiver can fence staleness;
``forward`` resolves the leader only after its last yield.
"""


class Preparer:
    def __init__(self, cluster, node_id):
        self.cluster = cluster
        self.node_id = node_id
        self.epoch = 0
        self.leader_node_id = 0

    def prepare(self, dest, payload):
        epoch = self.epoch
        yield from self.replicate(payload)
        yield self.cluster.rpc_send(dest, self.node_id, payload, epoch=epoch)

    def forward(self, payload):
        yield from self.replicate(payload)
        leader = self.leader_node_id
        yield self.cluster.rpc_send(leader, self.node_id, payload)

    def replicate(self, payload):
        yield self.cluster.fsync(payload)
