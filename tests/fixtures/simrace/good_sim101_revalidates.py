"""Clean: the owner is re-validated after the yield before acting on it."""


class ShardMover:
    def __init__(self, sim, cluster):
        self.sim = sim
        self.cluster = cluster
        self.owner = 0

    def rehome(self, node_id):
        self.owner = node_id

    def migrate(self, shard, payload):
        owner = self.owner
        yield self.sim.timeout(1)
        if owner != self.owner:
            return
        self.cluster.transfer(owner, shard, payload)
