"""Clean: every settle is guarded or owns the event outright.

``complete`` checks ``.triggered``; ``abort`` swaps the attribute to a
local and clears it first (the ownership-transfer idiom), so only one
process can ever settle the event.
"""


class Rendezvous:
    def __init__(self, sim):
        self.sim = sim
        self.done = sim.event()

    def complete(self, value):
        if not self.done.triggered:
            self.done.succeed(value)

    def abort(self, error):
        armed, self.done = self.done, None
        if armed is not None:
            armed.fail(error)
