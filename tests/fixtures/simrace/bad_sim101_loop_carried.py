"""SIM101: a capture hoisted out of a pump loop goes stale on iteration two.

``resize`` can change the window while the pump sleeps; every later
iteration ships with the stale budget.
"""


class Pump:
    def __init__(self, sim, peer):
        self.sim = sim
        self.peer = peer
        self.window = 8
        self.running = True

    def resize(self, n):
        self.window = n

    def stop(self):
        self.running = False

    def run(self):
        budget = self.window
        while self.running:
            yield self.sim.timeout(1)
            self.peer.ship(budget)
