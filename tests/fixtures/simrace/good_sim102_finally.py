"""Clean: the acquire is paired with release/cancel on every path.

The ``holding`` flag distinguishes a taken grant from a queued request, so
the finally block returns the slot no matter where an Interrupt lands.
"""


class Replayer:
    def __init__(self, sim, slots):
        self.sim = sim
        self._slots = slots

    def replay(self, batch):
        slot = None
        holding = False
        try:
            slot = self._slots.acquire()
            yield slot
            holding = True
            yield from self.apply(batch)
        finally:
            if holding:
                self._slots.release()
            else:
                self._slots.cancel_acquire(slot)

    def apply(self, batch):
        for record in batch:
            yield self.sim.timeout(record)
