"""SIM101: the owner-of-record is cached before a yield and acted on after.

``rehome`` can move the shard while ``migrate`` is suspended at the
timeout; the transfer then targets the old owner.
"""


class ShardMover:
    def __init__(self, sim, cluster):
        self.sim = sim
        self.cluster = cluster
        self.owner = 0

    def rehome(self, node_id):
        self.owner = node_id

    def migrate(self, shard, payload):
        owner = self.owner
        yield self.sim.timeout(1)
        self.cluster.transfer(owner, shard, payload)
