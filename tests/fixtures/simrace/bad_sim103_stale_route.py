"""SIM103: a leader resolved before a yield is used as the send target.

The leader can fail over while ``forward`` waits in ``flush``; the send
then targets the deposed node.
"""


class Forwarder:
    def __init__(self, cluster, node_id):
        self.cluster = cluster
        self.node_id = node_id
        self.leader_node_id = 0

    def forward(self, payload):
        leader = self.leader_node_id
        yield from self.flush()
        yield self.cluster.rpc_send(leader, self.node_id, payload)

    def flush(self):
        yield self.cluster.fsync(self.node_id)
