"""SIM103: an epoch fence read before a yield is dropped from the send.

The replication wait can overlap a failover epoch bump; the send after it
carries no fence, so the receiver cannot reject the stale sender.
"""


class Preparer:
    def __init__(self, cluster, node_id):
        self.cluster = cluster
        self.node_id = node_id
        self.epoch = 0
        self.log = []

    def prepare(self, dest, payload):
        epoch = self.epoch
        self.log.append((epoch, dest))
        yield from self.replicate(payload)
        yield self.cluster.rpc_send(dest, self.node_id, payload)

    def replicate(self, payload):
        yield self.cluster.fsync(payload)
