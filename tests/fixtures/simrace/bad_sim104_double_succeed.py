"""SIM104: one rendezvous event settled from two processes with no guard.

Whichever of ``complete`` / ``abort`` runs second settles an already
settled event and raises "triggered twice".
"""


class Rendezvous:
    def __init__(self, sim):
        self.sim = sim
        self.done = sim.event()

    def complete(self, value):
        self.done.succeed(value)

    def abort(self, error):
        self.done.fail(error)
