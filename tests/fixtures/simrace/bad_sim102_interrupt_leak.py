"""SIM102: the replay slot leaks when an Interrupt lands at a later yield.

The release only sits on the straight-line path; an Interrupt thrown at
either yield unwinds past it and the slot is never returned.
"""


class Replayer:
    def __init__(self, sim, slots):
        self.sim = sim
        self._slots = slots

    def replay(self, batch):
        slot = self._slots.acquire()
        yield slot
        yield from self.apply(batch)
        self._slots.release()

    def apply(self, batch):
        for record in batch:
            yield self.sim.timeout(record)
