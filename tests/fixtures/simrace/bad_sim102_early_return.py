"""SIM102: an early return between acquire and release drops the slot.

The empty-batch shortcut exits the function while still holding the
grant, so every later waiter queues behind a slot nobody will return.
"""


class Replayer:
    def __init__(self, sim, slots):
        self.sim = sim
        self._slots = slots

    def replay(self, batch):
        slot = self._slots.acquire()
        yield slot
        if not batch:
            return
        yield from self.apply(batch)
        self._slots.release()

    def apply(self, batch):
        for record in batch:
            yield self.sim.timeout(record)
