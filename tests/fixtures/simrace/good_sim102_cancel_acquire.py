"""Clean: a helper owns the release/cancel pairing for every exit.

Exercises the one-level interprocedural lookup: the finally delegates to
``_release_slot``, which releases a taken grant or cancels a queued one.
"""


class Replayer:
    def __init__(self, sim, slots):
        self.sim = sim
        self._slots = slots

    def replay(self, batch):
        slot = self._slots.acquire()
        try:
            yield slot
            yield from self.apply(batch)
        finally:
            self._release_slot(slot)

    def _release_slot(self, slot):
        if slot.triggered:
            self._slots.release()
        else:
            self._slots.cancel_acquire(slot)

    def apply(self, batch):
        for record in batch:
            yield self.sim.timeout(record)
