"""The topology API and the contended fair-share network.

Covers the redesigned network surface end to end:

- :class:`~repro.sim.topology.Topology` units — placement, governing-tier
  routing, presets, the single-rack degenerate case;
- the deprecation shim for flat ``Network(sim, config)`` construction
  (warns exactly once per process);
- analytic fairness regressions — equal transfers split the trunk and
  finish simultaneously; a staggered joiner re-divides deterministically;
- the pump-share class cap (an always-on throttle, also when the capped
  class is alone on the trunk);
- a bandwidth-conservation property over :attr:`Network.flow_trace`;
- tier-degrade faults (``degrade:<tier>:<factor>@<at>+<duration>``) parsed
  and injected through the nemesis;
- the seed-pinned single-tier timeline: topology-built flat networks must
  reproduce the pre-topology byte-identical digests.
"""

import hashlib
import warnings

import pytest

from repro.sim import Simulator
from repro.sim.network import (
    BACKUP_CLASS,
    MIGRATION_CLASS,
    Network,
    NetworkConfig,
)
from repro.sim.topology import LinkProfile, PRESETS, Topology, make_topology

#: A two-AZ toy: the inter-AZ trunk is the region tier at 1000 B/s so the
#: fairness arithmetic below is exact in decimal floats.
_PROFILES = {
    "rack": LinkProfile(0.0001, 1.0e9),
    "az": LinkProfile(0.0005, 1.0e6),
    "region": LinkProfile(0.001, 1000.0),
    "geo": LinkProfile(0.01, 500.0),
}


def two_az_network(sim):
    topology = Topology.build(
        {"r1": {"az1": {"rk1": ["a", "b"]}, "az2": {"rk2": ["c", "d"]}}},
        _PROFILES,
    )
    return Network.from_topology(sim, topology)


def drain(sim):
    sim.run()
    return sim.now


# ----------------------------------------------------------------------
# Topology units
# ----------------------------------------------------------------------
def test_topology_placement_and_governing_tier():
    topology = Topology.build(
        {
            "r1": {"az1": {"rk1": ["a", "b"], "rk2": ["c"]}, "az2": {"rk3": ["d"]}},
            "r2": {"az3": {"rk4": ["e"]}},
        },
        _PROFILES,
    )
    assert topology.placement("a") == ("r1", "r1/az1", "r1/az1/rk1")
    assert topology.tier("a", "b") == "rack"
    assert topology.tier("a", "c") == "az"
    assert topology.tier("a", "d") == "region"
    assert topology.tier("a", "e") == "geo"
    # Unplaced nodes land in the first declared rack, deterministically.
    assert topology.placement("ghost") == topology.placement("a")
    assert not topology.is_single_rack
    assert topology.contended  # multi-rack defaults to contended


def test_topology_route_is_directed():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    tier_ab, key_ab = network.topology.route("a", "c")
    tier_ba, key_ba = network.topology.route("c", "a")
    assert tier_ab == tier_ba == "region"
    assert key_ab != key_ba  # full duplex: each direction its own trunk


def test_topology_single_is_uncontended_flat():
    topology = Topology.single(LinkProfile(0.0002, 1.25e9))
    assert topology.is_single_rack
    assert not topology.contended
    assert topology.tier("x", "y") == "rack"


def test_make_topology_presets():
    nodes = ["node-{}".format(i + 1) for i in range(6)]
    profiles = _PROFILES
    single = make_topology("single", nodes, profiles)
    assert not single.contended
    multi = make_topology("multi_az", nodes, profiles)
    # Contiguous halves: node-1..3 in AZ 1, node-4..6 in AZ 2.
    assert multi.tier("node-1", "node-3") == "rack"
    assert multi.tier("node-1", "node-4") != "rack"
    geo = make_topology("geo", nodes, profiles)
    assert geo.tier("node-1", "node-6") == "geo"
    assert set(PRESETS) == {"single", "multi_az", "geo"}
    with pytest.raises(ValueError):
        make_topology("ring", nodes, profiles)


def test_topology_to_dict_is_json_shaped():
    topology = make_topology("multi_az", ["n1", "n2"], _PROFILES)
    payload = topology.to_dict()
    assert payload["name"] == "multi_az"
    assert payload["contended"] is True
    assert payload["profiles"]["region"]["bandwidth"] == 1000.0


# ----------------------------------------------------------------------
# Deprecation shim
# ----------------------------------------------------------------------
def test_flat_network_constructor_warns_once():
    import repro.sim.network as network_module

    sim = Simulator(seed=0)
    original = network_module._flat_config_warned
    network_module._flat_config_warned = False
    try:
        with pytest.warns(DeprecationWarning, match="from_topology"):
            Network(sim, NetworkConfig())
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second construction: silent
            Network(sim, NetworkConfig())
    finally:
        network_module._flat_config_warned = original


def test_from_topology_does_not_warn():
    sim = Simulator(seed=0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        two_az_network(sim)


# ----------------------------------------------------------------------
# Fairness regressions (analytic timelines on the 1000 B/s trunk)
# ----------------------------------------------------------------------
def test_equal_transfers_share_the_trunk_and_finish_together():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    finished = {}
    for name in ("x", "y"):
        event = network.send("a", "c", 1000)
        event.add_callback(
            lambda _v, name=name: finished.__setitem__(name, sim.now)
        )
    drain(sim)
    # Each flow gets 500 B/s: 2.0 s of transfer + 1 ms trunk latency.
    assert finished == {"x": 2.001, "y": 2.001}


def test_staggered_joiner_reshares_deterministically():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    finished = {}

    def note(name):
        return lambda _v: finished.__setitem__(name, sim.now)

    network.send("a", "c", 1000).add_callback(note("first"))
    sim.schedule(0.5, lambda: network.send("a", "c", 1000).add_callback(note("second")))
    drain(sim)
    # First runs alone for 0.5 s (500 B done), shares for 1.0 s (500 B);
    # the second then finishes its remaining 500 B at full rate.
    assert finished["first"] == pytest.approx(1.501, abs=1e-9)
    assert finished["second"] == pytest.approx(2.001, abs=1e-9)


def test_reverse_direction_is_independent():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    finished = {}

    def note(name):
        return lambda _v: finished.__setitem__(name, sim.now)

    network.send("a", "c", 1000).add_callback(note("fwd"))
    network.send("c", "a", 1000).add_callback(note("rev"))
    drain(sim)
    # Full duplex: each direction has its own 1000 B/s, no sharing.
    assert finished["fwd"] == pytest.approx(1.001, abs=1e-9)
    assert finished["rev"] == pytest.approx(1.001, abs=1e-9)


def test_pump_share_caps_migration_class():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    network.set_class_cap(MIGRATION_CLASS, 0.25)
    finished = {}

    def note(name):
        return lambda _v: finished.__setitem__(name, sim.now)

    network.send("a", "c", 1000, MIGRATION_CLASS).add_callback(note("mig"))
    network.send("a", "c", 1500).add_callback(note("fg"))
    drain(sim)
    # Migration is pinned at 250 B/s; the foreground takes the remaining
    # 750 B/s and finishes first; the cap still binds once it is alone.
    assert finished["fg"] == pytest.approx(2.001, abs=1e-9)
    assert finished["mig"] == pytest.approx(4.001, abs=1e-9)


def test_class_cap_binds_even_without_contention():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    network.set_class_cap(BACKUP_CLASS, 0.5)
    finished = {}
    network.send("a", "c", 1000, BACKUP_CLASS).add_callback(
        lambda _v: finished.setdefault("backup", sim.now)
    )
    drain(sim)
    # Alone on the trunk but still throttled to 500 B/s.
    assert finished["backup"] == pytest.approx(2.001, abs=1e-9)


def test_set_class_cap_validates():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    with pytest.raises(ValueError):
        network.set_class_cap(MIGRATION_CLASS, 0.0)
    network.set_class_cap(MIGRATION_CLASS, 0.3)
    assert network.class_cap(MIGRATION_CLASS) == 0.3
    network.set_class_cap(MIGRATION_CLASS, 1.0)  # >= 1 removes the cap
    assert network.class_cap(MIGRATION_CLASS) == 1.0


def test_zero_byte_messages_bypass_the_trunk():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    network.send("a", "c", 500_000, MIGRATION_CLASS)  # a long bulk flow
    finished = {}
    network.send("a", "c", 0).add_callback(
        lambda _v: finished.setdefault("ping", sim.now)
    )
    sim.run(until=1.0)
    # Control-plane pings pay pure latency, never a bandwidth share.
    assert finished["ping"] == pytest.approx(0.001, abs=1e-9)


# ----------------------------------------------------------------------
# Bandwidth conservation (property over the flow trace)
# ----------------------------------------------------------------------
def test_flow_trace_conserves_trunk_bandwidth():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    network.flow_trace = []
    network.set_class_cap(MIGRATION_CLASS, 0.4)
    rng = sim.rng("conservation")
    for index in range(40):
        src, dst = ("a", "c") if index % 2 == 0 else ("d", "b")
        cls = (None, MIGRATION_CLASS, BACKUP_CLASS)[index % 3]
        size = rng.randint(100, 5000)
        sim.schedule(rng.uniform(0.0, 3.0), network.send, src, dst, size, cls)
    drain(sim)
    assert network.flow_trace  # the storm actually exercised the trunks
    for _now, key, rates in network.flow_trace:
        tier = key[0]
        bandwidth = network.topology.profiles[tier].bandwidth
        assert sum(rates) <= bandwidth * (1.0 + 1e-9)
        assert all(rate > 0.0 for rate in rates)
        # Equal shares within a trunk, up to the class-cap waterfill: no
        # flow may exceed the equal share of the uncapped pool.
        assert max(rates) <= bandwidth / 1.0 + 1e-9


def test_flows_are_settled_exactly_once():
    """Every byte sent over contended trunks is delivered, none duplicated:
    total transfer time equals bytes/rate integrated over the re-shares."""
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    sizes = [1000, 1500, 700, 300]
    finished = []
    for offset, size in enumerate(sizes):
        sim.schedule(
            0.25 * offset,
            lambda size=size: network.send("a", "c", size).add_callback(
                lambda _v: finished.append(sim.now)
            ),
        )
    drain(sim)
    assert len(finished) == len(sizes)
    # Work conservation: the trunk runs at full rate until the last byte;
    # the final finisher leaves at total_bytes / bandwidth (+latency).
    assert max(finished) == pytest.approx(sum(sizes) / 1000.0 + 0.001, abs=1e-9)


# ----------------------------------------------------------------------
# Tier-degrade faults
# ----------------------------------------------------------------------
def test_fault_plan_parses_degrade():
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.parse("degrade:region:0.1@0.5+1.0")
    fault = plan.faults[0]
    assert fault.kind == "degrade"
    assert fault.node == "region"
    assert fault.value == pytest.approx(0.1)
    assert fault.at == pytest.approx(0.5)
    assert fault.duration == pytest.approx(1.0)
    with pytest.raises(ValueError):
        FaultPlan.parse("degrade:ring:0.1@0.5+1.0")  # unknown tier
    with pytest.raises(ValueError):
        FaultPlan.parse("degrade:region:0@0.5+1.0")  # factor must be > 0


def test_set_tier_degrade_scales_and_heals():
    sim = Simulator(seed=0)
    network = two_az_network(sim)
    finished = {}

    def send(name):
        network.send("a", "c", 1000).add_callback(
            lambda _v: finished.__setitem__(name, sim.now)
        )

    network.set_tier_degrade("region", bandwidth_factor=0.5)
    send("degraded")
    drain(sim)
    assert finished["degraded"] == pytest.approx(2.001, abs=1e-9)
    network.set_tier_degrade("region")  # heal
    send("healed")
    drain(sim)
    assert finished["healed"] - finished["degraded"] == pytest.approx(
        1.001, abs=1e-9
    )


def test_nemesis_injects_degrade_and_heals():
    from repro.cluster import Cluster
    from repro.config import ClusterConfig, TierProfiles
    from repro.faults import Nemesis
    from repro.faults.plan import FaultPlan

    topology = make_topology(
        "multi_az",
        ["node-{}".format(i + 1) for i in range(4)],
        TierProfiles().as_profiles(),
    )
    cluster = Cluster(ClusterConfig(num_nodes=4, seed=0, topology=topology))
    plan = FaultPlan.parse("degrade:region:0.25@0.2+0.5")
    nemesis = Nemesis(cluster, plan)
    cluster.spawn(nemesis.run(), name="nemesis")
    cluster.run(until=1.5)
    notes = [d for _t, d in nemesis.timeline]
    assert "fault:degrade:region:0.25" in notes
    assert "heal:degrade:region" in notes


# ----------------------------------------------------------------------
# Single-tier byte-identity (seed-pinned digests)
# ----------------------------------------------------------------------
#: Digests of the full commit/tuple/network timeline recorded on the flat
#: pre-topology network. Topology-built single-rack networks must keep
#: reproducing these bytes exactly: the constant-delay fast path is a
#: compatibility contract, not an approximation.
_PINNED = {
    7: "bce08f4267c561d9f7ce5f4c9ad350123cdcfdb022476ad3ad03ae6c305d485b",
    11: "d149c180ea7e2e7939b8fe6f19ee902609faf4d718cd7ced559c55bde6ff353e",
}


def _timeline_digest(seed):
    from repro.cluster import Cluster
    from repro.config import ClusterConfig
    from repro.migration import MigrationPlan, RemusMigration, run_plan
    from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

    cluster = Cluster(ClusterConfig(num_nodes=3, seed=seed))
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(
            num_tuples=300,
            num_shards=6,
            num_clients=4,
            tuple_size=256,
            think_time=0.002,
        ),
    )
    workload.create()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.4)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    plan = MigrationPlan(RemusMigration, [([shard], "node-1", "node-2")])
    proc = cluster.spawn(run_plan(cluster, plan))
    cluster.run(until=4.0)
    assert proc.finished
    pool.stop()
    cluster.run(until=4.5)
    commits = [(r.time, r.label, r.latency) for r in cluster.metrics.commits]
    return hashlib.sha256(
        repr(
            (
                commits,
                sorted(cluster.dump_table("ycsb").items()),
                plan.stats.tuples_copied,
                cluster.network.messages_sent,
                cluster.network.bytes_sent,
            )
        ).encode()
    ).hexdigest()


@pytest.mark.parametrize("seed", sorted(_PINNED))
def test_single_tier_timeline_is_byte_identical(seed):
    assert _timeline_digest(seed) == _PINNED[seed]
