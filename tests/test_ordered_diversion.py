"""Focused tests for ordered diversion (§3.5.1, Theorem 3.1).

The shard map is a regular multi-versioned table; T_m updates it on every
node under 2PC and its commit timestamp becomes the diversion barrier.
These tests drive the machinery directly: routing through the cache's
read-through state performs an MVCC read that prepare-waits on an in-flight
T_m, and a transaction is diverted iff its snapshot is at/after T_m's commit.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.shardmap import SHARDMAP_SHARD
from repro.config import ClusterConfig


@pytest.fixture
def cluster():
    c = Cluster(ClusterConfig(num_nodes=2))
    c.create_table("t", num_shards=1, tuple_size=64)
    c.bulk_load("t", [(k, k) for k in range(30)])
    return c


def run(cluster, gen):
    return cluster.sim.run_until_complete(cluster.spawn(gen))


def manual_tm(cluster, shard, dest):
    """Begin a T_m-like transaction and prepare it on every node, leaving it
    in the vulnerable prepared-but-uncommitted window. Returns (txn, commit)
    where commit() is a generator finishing the 2PC."""
    session = cluster.session(cluster.shard_owner(shard))

    def setup():
        txn = yield from session.begin(label="__tm__", internal=True)
        for node_id in cluster.node_ids():
            node = cluster.nodes[node_id]
            yield from node.manager.update(txn, SHARDMAP_SHARD, shard, dest, size=64)
        for node_id in cluster.node_ids():
            yield from cluster.nodes[node_id].manager.local_prepare(txn)
        return txn

    txn = run(cluster, setup())

    def commit():
        floor = max(
            cluster.oracle.local_now(node_id) for node_id in cluster.node_ids()
        )
        cts = yield from cluster.oracle.commit_timestamp(session.node_id, floor)
        txn.commit_ts = cts
        for node_id in cluster.node_ids():
            cluster.oracle.observe(node_id, cts)
            yield from cluster.nodes[node_id].manager.local_commit(txn, cts)
        from repro.txn.transaction import TxnState

        txn.state = TxnState.COMMITTED
        cluster.finish_txn(txn, committed=True)
        cluster.record_ownership(shard, dest)
        return cts

    return txn, commit


def test_routing_prepare_waits_on_inflight_tm(cluster):
    shard = cluster.tables["t"].shard_ids()[0]
    source = cluster.shard_owner(shard)
    dest = next(n for n in cluster.node_ids() if n != source)
    cluster.set_cache_read_through([shard])
    tm, commit = manual_tm(cluster, shard, dest)

    session = cluster.session(dest)
    observed = {}

    def reader():
        txn = yield from session.begin(label="reader")
        value = yield from session.read(txn, "t", 1)
        observed["at"] = cluster.sim.now
        observed["value"] = value
        yield from session.commit(txn)
        observed["start_ts"] = txn.start_ts

    cluster.spawn(reader())
    cluster.run(until=0.5)
    # The reader's routing read hit T_m's prepared shard-map row: blocked.
    assert "at" not in observed
    cts = run(cluster, commit())
    cluster.run(until=1.0)
    assert observed["value"] == 1
    # Theorem 3.1: diverted iff start_ts >= T_m.commitTS. This reader began
    # before T_m's commit, so it must have read from the source copy.
    assert observed["start_ts"] < cts


def test_post_tm_transactions_route_to_destination(cluster):
    shard = cluster.tables["t"].shard_ids()[0]
    source = cluster.shard_owner(shard)
    dest = next(n for n in cluster.node_ids() if n != source)
    cluster.set_cache_read_through([shard])
    tm, commit = manual_tm(cluster, shard, dest)
    cts = run(cluster, commit())
    # Install some destination data so the routed read can be verified: the
    # destination copy holds a marker value.
    cluster.nodes[dest].bulk_install(shard, [(1, "dest-copy")])

    session = cluster.session(source)

    def reader():
        txn = yield from session.begin(label="post-tm")
        assert txn.start_ts >= cts
        value = yield from session.read(txn, "t", 1)
        yield from session.commit(txn)
        return value

    assert run(cluster, reader()) == "dest-copy"
    cluster.clear_cache_read_through([shard])


def test_stale_cache_detection_via_entry_version(cluster):
    """After the caches are refreshed, an *old-snapshot* transaction still
    routes to the source: the cached entry is newer than its snapshot."""
    shard = cluster.tables["t"].shard_ids()[0]
    source = cluster.shard_owner(shard)
    dest = next(n for n in cluster.node_ids() if n != source)
    session = cluster.session(source)

    def old_txn_begin():
        txn = yield from session.begin(label="old")
        yield from session.read(txn, "t", 2)  # pin the snapshot
        return txn

    old_txn = run(cluster, old_txn_begin())

    cluster.set_cache_read_through([shard])
    tm, commit = manual_tm(cluster, shard, dest)
    cts = run(cluster, commit())
    cluster.refresh_caches(shard, dest, cts)
    cluster.clear_cache_read_through([shard])
    cluster.nodes[dest].bulk_install(shard, [(2, "dest-copy")])

    def finish_old():
        value = yield from session.read(old_txn, "t", 2)
        yield from session.commit(old_txn)
        return value

    # The cache says dest (cts newer than the old snapshot), but routing
    # falls back to the shard-map table and keeps the old txn on the source.
    assert run(cluster, finish_old()) == 2
