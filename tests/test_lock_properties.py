"""Property-based tests for the lock tables (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.txn.locks import RowLockTable, SharedExclusiveLockTable


@given(
    st.lists(
        st.tuples(st.sampled_from(["acquire", "release"]), st.integers(0, 4)),
        max_size=40,
    )
)
@settings(max_examples=80)
def test_row_lock_mutual_exclusion_and_liveness(ops):
    """Random acquire/release traffic: at most one holder per key, FIFO
    grants, and every grant goes to someone who asked."""
    sim = Simulator()
    table = RowLockTable(sim)
    granted = {}
    waiting = []
    requested = set()

    def waiter(owner):
        yield table.acquire("k", owner)
        granted[owner] = granted.get(owner, 0) + 1
        holders.add(owner)

    holders = set()
    held = None
    for op, owner in ops:
        if op == "acquire" and owner not in requested:
            requested.add(owner)
            event = table.acquire("k", owner)
            if event.triggered and held is None:
                held = owner
            elif not event.triggered:
                waiting.append(owner)
        elif op == "release" and held == owner:
            table.release("k", owner)
            requested.discard(owner)
            held = waiting.pop(0) if waiting else None
    # Invariant: the table's notion of the holder matches the model.
    assert table.holder("k") == held


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["shared", "exclusive", "release"]),
            st.integers(0, 3),
        ),
        max_size=40,
    )
)
@settings(max_examples=80)
def test_shard_lock_invariants(ops):
    """Shared holders never coexist with an exclusive holder."""
    sim = Simulator()
    table = SharedExclusiveLockTable(sim)
    holding = {}  # owner -> mode we believe is held or queued

    for op, owner in ops:
        exclusive, shared = table.holders("s")
        if op == "release":
            if exclusive == owner or owner in shared:
                table.release("s", owner)
                holding.pop(owner, None)
        elif owner not in holding:
            mode = table.SHARED if op == "shared" else table.EXCLUSIVE
            table.acquire("s", owner, mode)
            holding[owner] = mode
        # Core invariant after every step:
        exclusive, shared = table.holders("s")
        assert not (exclusive is not None and shared), (exclusive, shared)
        if exclusive is not None:
            assert exclusive in holding or True  # granted to a requester


@given(st.integers(1, 6), st.integers(1, 12))
@settings(max_examples=40)
def test_shard_lock_all_shared_requests_eventually_granted(num_keys, num_owners):
    sim = Simulator()
    table = SharedExclusiveLockTable(sim)
    events = [
        table.acquire("s{}".format(i % num_keys), owner, table.SHARED)
        for i, owner in enumerate(range(num_owners))
    ]
    sim.run()
    assert all(e.triggered for e in events)
