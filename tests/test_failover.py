"""Node failure / failover tests (§3.7's fault-tolerance model)."""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.migration import RemusMigration
from repro.migration.recovery import crash_migration, recover_migration
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def build(replication=1):
    cluster = Cluster(ClusterConfig(num_nodes=3, replication_factor=replication))
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=600, num_shards=6, num_clients=6,
                   tuple_size=256, think_time=0.004),
    )
    workload.create()
    return cluster, workload


def test_replication_adds_commit_latency():
    plain, _w = build(replication=0)
    replicated, _w2 = build(replication=2)
    assert replicated.nodes["node-1"].manager.extra_flush_latency > 0
    assert plain.nodes["node-1"].manager.extra_flush_latency == 0


def test_failed_node_blocks_new_work_until_failover():
    cluster, workload = build()
    session = cluster.session("node-2")
    key = sorted(cluster.nodes["node-1"].heaps[
        cluster.shards_on_node("node-1", table="ycsb")[0]
    ].keys())[0]
    times = {}

    def reader():
        yield 0.1  # after the failure below
        txn = yield from session.begin(label="r")
        value = yield from session.read(txn, "ycsb", key)
        yield from session.commit(txn)
        times["done"] = cluster.sim.now
        times["value"] = value

    cluster.spawn(reader())
    cluster.fail_node("node-1", failover_time=1.0)
    cluster.run(until=5.0)
    # The read had to wait for the failover to complete.
    assert times["done"] >= 1.0
    assert times["value"] == {"f0": key}


def test_failover_aborts_in_flight_txns_but_keeps_committed_data():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    cluster.fail_node("node-2", failover_time=0.5)
    cluster.run(until=3.0)
    pool.stop()
    cluster.run(until=3.5)
    # Some transactions died with the node; all committed data survives.
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
    assert cluster.metrics.abort_count(kind="migration") >= 0
    crashes = [
        (p.name, e) for p, e in cluster.sim.failed_processes
    ]
    assert not crashes, crashes


def test_throughput_dips_during_failover_and_recovers():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=1.0)
    cluster.fail_node("node-1", failover_time=1.0)
    cluster.run(until=4.0)
    pool.stop()
    cluster.run(until=4.5)
    metrics = cluster.metrics
    before = metrics.average_throughput(label="ycsb", start=0.2, end=1.0)
    during = metrics.average_throughput(label="ycsb", start=1.1, end=1.9)
    after = metrics.average_throughput(label="ycsb", start=2.5, end=4.0)
    assert during < 0.8 * before
    assert after > during


def test_fail_node_is_deterministic_across_runs():
    """Same seed, same failover scenario => bit-identical event timeline.

    Chaos replayability rests on this: a node crash plus failover under a
    running workload must not introduce any hidden nondeterminism."""

    def run_once():
        cluster, workload = build()
        pool = workload.make_clients()
        pool.start()
        cluster.run(until=0.5)
        cluster.fail_node("node-2", failover_time=0.5)
        cluster.run(until=2.5)
        pool.stop()
        cluster.run(until=3.0)
        return (
            tuple(cluster.metrics.marks),
            cluster.network.messages_sent,
            sorted(cluster.dump_table("ycsb").items()),
        )

    first = run_once()
    second = run_once()
    assert first == second


def test_source_failure_mid_migration_then_recovery():
    """Crash the migration source before T_m; fail the node over; run the
    §3.7 recovery: the migration rolls back and can be retried."""
    from repro.config import CostModel

    cluster = Cluster(
        ClusterConfig(
            num_nodes=3,
            replication_factor=1,
            costs=CostModel(snapshot_scan_per_tuple=2e-3),
        )
    )
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=600, num_shards=6, num_clients=4,
                   tuple_size=256, think_time=0.004),
    )
    workload.create()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    migration = RemusMigration(cluster, [shard], "node-1", "node-2")
    proc = cluster.spawn(migration.run(), name="migration")
    cluster.run(until=0.6)  # mid snapshot copy
    assert migration.stats.tm_commit_ts is None
    # The source primary dies: the migration machinery dies with it.
    proc.interrupt("source node failed")
    cluster.fail_node("node-1", failover_time=0.5)
    cluster.run(until=1.5)
    residual = crash_migration(migration)
    recovery = cluster.spawn(recover_migration(cluster, migration, residual))
    cluster.run(until=10.0)
    assert recovery.result() == "rolled_back"
    # Retry after failover succeeds.
    retry = RemusMigration(cluster, [shard], "node-1", "node-2")
    retry_proc = cluster.spawn(retry.run())
    cluster.run(until=40.0)
    retry_proc.result()
    assert cluster.shard_owner(shard) == "node-2"
    pool.stop()
    cluster.run(until=41.0)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
