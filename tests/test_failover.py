"""Node failure / failover tests (§3.7's fault-tolerance model)."""

from repro.cluster import Cluster
from repro.cluster.shard import ShardId
from repro.config import ClusterConfig
from repro.migration import RemusMigration
from repro.migration.recovery import crash_migration, recover_migration
from repro.profiling import COUNTERS
from repro.storage.clog import TxnStatus
from repro.txn.errors import StaleEpoch, TransactionError
from repro.txn.transaction import TxnState
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def build(replication=1):
    cluster = Cluster(ClusterConfig(num_nodes=3, replication_factor=replication))
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=600, num_shards=6, num_clients=6,
                   tuple_size=256, think_time=0.004),
    )
    workload.create()
    return cluster, workload


def test_replication_adds_commit_latency():
    plain, _w = build(replication=0)
    replicated, _w2 = build(replication=2)
    assert replicated.nodes["node-1"].manager.extra_flush_latency > 0
    assert plain.nodes["node-1"].manager.extra_flush_latency == 0


def test_failed_node_blocks_new_work_until_failover():
    cluster, workload = build()
    session = cluster.session("node-2")
    key = sorted(cluster.nodes["node-1"].heaps[
        cluster.shards_on_node("node-1", table="ycsb")[0]
    ].keys())[0]
    times = {}

    def reader():
        yield 0.1  # after the failure below
        txn = yield from session.begin(label="r")
        value = yield from session.read(txn, "ycsb", key)
        yield from session.commit(txn)
        times["done"] = cluster.sim.now
        times["value"] = value

    cluster.spawn(reader())
    cluster.fail_node("node-1", failover_time=1.0)
    cluster.run(until=5.0)
    # The read had to wait for the failover to complete.
    assert times["done"] >= 1.0
    assert times["value"] == {"f0": key}


def test_failover_aborts_in_flight_txns_but_keeps_committed_data():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    cluster.fail_node("node-2", failover_time=0.5)
    cluster.run(until=3.0)
    pool.stop()
    cluster.run(until=3.5)
    # Some transactions died with the node; all committed data survives.
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
    assert cluster.metrics.abort_count(kind="migration") >= 0
    crashes = [
        (p.name, e) for p, e in cluster.sim.failed_processes
    ]
    assert not crashes, crashes


def test_throughput_dips_during_failover_and_recovers():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=1.0)
    cluster.fail_node("node-1", failover_time=1.0)
    cluster.run(until=4.0)
    pool.stop()
    cluster.run(until=4.5)
    metrics = cluster.metrics
    before = metrics.average_throughput(label="ycsb", start=0.2, end=1.0)
    during = metrics.average_throughput(label="ycsb", start=1.1, end=1.9)
    after = metrics.average_throughput(label="ycsb", start=2.5, end=4.0)
    assert during < 0.8 * before
    assert after > during


def test_fail_node_is_deterministic_across_runs():
    """Same seed, same failover scenario => bit-identical event timeline.

    Chaos replayability rests on this: a node crash plus failover under a
    running workload must not introduce any hidden nondeterminism."""

    def run_once():
        cluster, workload = build()
        pool = workload.make_clients()
        pool.start()
        cluster.run(until=0.5)
        cluster.fail_node("node-2", failover_time=0.5)
        cluster.run(until=2.5)
        pool.stop()
        cluster.run(until=3.0)
        return (
            tuple(cluster.metrics.marks),
            cluster.network.messages_sent,
            sorted(cluster.dump_table("ycsb").items()),
        )

    first = run_once()
    second = run_once()
    assert first == second


def test_source_failure_mid_migration_then_recovery():
    """Crash the migration source before T_m; fail the node over; run the
    §3.7 recovery: the migration rolls back and can be retried."""
    from repro.config import CostModel

    cluster = Cluster(
        ClusterConfig(
            num_nodes=3,
            replication_factor=1,
            costs=CostModel(snapshot_scan_per_tuple=2e-3),
        )
    )
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=600, num_shards=6, num_clients=4,
                   tuple_size=256, think_time=0.004),
    )
    workload.create()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    migration = RemusMigration(cluster, [shard], "node-1", "node-2")
    proc = cluster.spawn(migration.run(), name="migration")
    cluster.run(until=0.6)  # mid snapshot copy
    assert migration.stats.tm_commit_ts is None
    # The source primary dies: the migration machinery dies with it.
    proc.interrupt("source node failed")
    cluster.fail_node("node-1", failover_time=0.5)
    cluster.run(until=1.5)
    residual = crash_migration(migration)
    recovery = cluster.spawn(recover_migration(cluster, migration, residual))
    cluster.run(until=10.0)
    assert recovery.result() == "rolled_back"
    # Retry after failover succeeds.
    retry = RemusMigration(cluster, [shard], "node-1", "node-2")
    retry_proc = cluster.spawn(retry.run())
    cluster.run(until=40.0)
    retry_proc.result()
    assert cluster.shard_owner(shard) == "node-2"
    pool.stop()
    cluster.run(until=41.0)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples


# ----------------------------------------------------------------------
# Replica failover during 2PC (epoch-fenced commit)
# ----------------------------------------------------------------------
def build_replicated():
    COUNTERS.reset()
    cluster = Cluster(ClusterConfig(num_nodes=4))
    cluster.create_table("counters", num_shards=3, tuple_size=64)
    cluster.bulk_load("counters", [(k, {"n": 0}) for k in range(90)])
    cluster.enable_replication("counters", n_followers=2)
    shard_id = ShardId("counters", 0)
    schema = cluster.tables["counters"]
    key = next(k for k in range(90) if schema.shard_for_key(k) == shard_id)
    return cluster, cluster.replication.group_for(shard_id), key


def no_orphaned_prepares(cluster):
    orphans = []
    for node_id, node in cluster.nodes.items():
        orphans += [
            (node_id, xid)
            for xid, status in node.clog.statuses()
            if status is TxnStatus.PREPARED
        ]
    return orphans


def _probe_txn(cluster, key, crash_group=None, commit_delay=0.0, out=None):
    """Driver generator: one read-modify-write on ``key``; optionally crash
    ``crash_group``'s leader after the writes, wait ``commit_delay``, then
    commit — recording the outcome instead of raising."""
    session = cluster.session("node-3")
    txn = yield from session.begin(label="probe")
    try:
        row = yield from session.read(txn, "counters", key)
        yield from session.update(txn, "counters", key, {"n": row["n"] + 1})
        out["txn"] = txn
        if crash_group is not None:
            crash_group.crash_replica(crash_group.leader_node_id)
        if commit_delay:
            yield commit_delay
        out["committed"] = yield from session.commit(txn)
    except TransactionError as exc:
        out["error"] = exc
        try:
            yield from session.abort(txn)
        except TransactionError:
            pass


def test_leader_crash_between_prepare_and_commit_commits_exactly_once():
    """Satellite: a transaction prepared against the group leader survives
    that leader dying before the commit decision is delivered — the
    coordinator re-resolves through the group and the commit lands on the
    new leader exactly once (never wedged, never double-committed)."""
    cluster, group, key = build_replicated()
    out = {}
    cluster.spawn(
        _probe_txn(cluster, key, out=out), name="probe"
    )

    def crasher():
        # Crash the leader the moment the probe enters its commit phase
        # (prepare acks in, decision not yet quorum-replicated).
        while "txn" not in out or out["txn"].state is not TxnState.COMMITTING:
            if "committed" in out or "error" in out:
                return
            yield 1e-4
        group.crash_replica(group.leader_node_id)

    cluster.spawn(crasher(), name="crasher")
    cluster.run(until=5.0)
    assert "committed" in out, out.get("error")
    assert group.epoch == 2
    assert COUNTERS.failover_elections == 1
    # Exactly once: the increment is visible exactly once on the new leader.
    assert cluster.dump_table("counters")[key] == {"n": 1}
    assert no_orphaned_prepares(cluster) == []
    assert not cluster.sim.failed_processes


def test_stale_epoch_prepare_rejected_then_retry_commits():
    """Satellite: a prepare that lands after an election is fenced by the
    shard-map epoch — the participant rejects it, the coordinator aborts
    cleanly (no orphaned PREPARED entries), and the client's retry commits
    exactly once on the new leader."""
    cluster, group, key = build_replicated()
    out = {}
    # The delay is tuned so the election completes while the prepare's WAL
    # flush is in flight: validation then sees epoch 2 against the txn's
    # routed epoch 1 (default cost model; retune if flush costs change).
    cluster.spawn(
        _probe_txn(cluster, key, crash_group=group, commit_delay=0.1998, out=out),
        name="probe",
    )
    cluster.run(until=5.0)
    assert isinstance(out.get("error"), StaleEpoch), out
    assert COUNTERS.stale_epoch_rejects >= 1
    assert group.epoch == 2
    assert cluster.dump_table("counters")[key] == {"n": 0}
    assert no_orphaned_prepares(cluster) == []
    # The client-style retry re-routes through the shard map and commits on
    # the new leader.
    out2 = {}
    cluster.spawn(_probe_txn(cluster, key, out=out2), name="retry")
    cluster.run(until=10.0)
    assert "committed" in out2, out2.get("error")
    assert cluster.dump_table("counters")[key] == {"n": 1}
    assert no_orphaned_prepares(cluster) == []
    assert not cluster.sim.failed_processes


def test_election_dooms_active_writers_cleanly():
    """A transaction still ACTIVE when its shard's leader is deposed is
    doomed by the election (its snapshot lives on the dead leader) and
    aborts cleanly; nothing is left prepared and no update is lost."""
    cluster, group, key = build_replicated()
    out = {}
    cluster.spawn(
        _probe_txn(cluster, key, crash_group=group, commit_delay=0.5, out=out),
        name="probe",
    )
    cluster.run(until=5.0)
    assert "error" in out and "committed" not in out
    assert cluster.dump_table("counters")[key] == {"n": 0}
    assert no_orphaned_prepares(cluster) == []
    assert not cluster.sim.failed_processes
