"""Integration tests for the baseline migration approaches."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.migration import (
    LockAndAbortMigration,
    MigrationPlan,
    SquallMigration,
    StopAndCopyMigration,
    WaitAndRemasterMigration,
    run_plan,
)
from repro.workloads.client import run_transaction
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def build(num_nodes=3, num_tuples=600, num_shards=6, num_clients=6, cc_mode="mvcc"):
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes))
    cluster.cc_mode = cc_mode
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(
            num_tuples=num_tuples,
            num_shards=num_shards,
            num_clients=num_clients,
            tuple_size=256,
            think_time=0.004,
        ),
    )
    workload.create()
    return cluster, workload


def migrate(cluster, approach, shard_ids, source, dest, runtime=15.0, **kwargs):
    plan = MigrationPlan(approach, [(shard_ids, source, dest)], **kwargs)
    proc = cluster.spawn(run_plan(cluster, plan), name="migration")
    cluster.run(until=runtime)
    assert proc.finished, "migration did not finish in time"
    proc.result()
    return plan


def assert_no_crashes(cluster):
    crashes = [
        (p.name, exc)
        for p, exc in cluster.sim.failed_processes
        if p.name not in ("client",) and not p.name.startswith("client:")
    ]
    assert not crashes, crashes


# ----------------------------------------------------------------------
# Lock-and-abort
# ----------------------------------------------------------------------
def test_lock_and_abort_idle_migration_is_clean():
    cluster, workload = build()
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    before = cluster.dump_table("ycsb")
    migrate(cluster, LockAndAbortMigration, [shard], "node-1", "node-2")
    assert cluster.dump_table("ycsb") == before
    assert cluster.shard_owner(shard) == "node-2"
    assert_no_crashes(cluster)


def test_lock_and_abort_kills_active_writer():
    cluster, workload = build(num_clients=0)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    keys = sorted(cluster.nodes["node-1"].heap_for(shard).keys())
    session = cluster.session("node-2")

    def long_writer():
        def body(sess, txn):
            yield from sess.update(txn, "ycsb", keys[0], {"f0": "w"})
            yield 8.0  # hold the write while the migration transfers

        process = cluster.spawn(run_transaction(session, body, label="victim"))
        return process

    proc = long_writer()
    cluster.run(until=0.1)
    plan = migrate(cluster, LockAndAbortMigration, [shard], "node-1", "node-3", runtime=20.0)
    cluster.run()
    committed, error = proc.result()
    assert committed is False
    assert error.kind == "migration"
    assert plan.stats.txns_aborted_by_migration >= 1
    # The victim's write must not survive.
    assert cluster.dump_table("ycsb")[keys[0]] == {"f0": keys[0]}
    assert_no_crashes(cluster)


def test_lock_and_abort_under_load_keeps_data_consistent():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shards = cluster.shards_on_node("node-1", table="ycsb")[:2]
    migrate(cluster, LockAndAbortMigration, shards, "node-1", "node-2", runtime=20.0)
    pool.stop()
    cluster.run(until=22.0)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
    assert_no_crashes(cluster)


# ----------------------------------------------------------------------
# Wait-and-remaster
# ----------------------------------------------------------------------
def test_wait_and_remaster_waits_for_ongoing_txns():
    cluster, workload = build(num_clients=0)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    keys = sorted(cluster.nodes["node-1"].heap_for(shard).keys())
    session = cluster.session("node-2")
    outcome = {}

    def slow_txn():
        txn = yield from session.begin(label="slow")
        yield from session.update(txn, "ycsb", keys[0], {"f0": "slow"})
        yield 2.0
        yield from session.commit(txn)
        outcome["done_at"] = cluster.sim.now

    cluster.spawn(slow_txn())
    cluster.run(until=0.1)
    plan = migrate(cluster, WaitAndRemasterMigration, [shard], "node-1", "node-3", runtime=20.0)
    migration = plan.migrations[0]
    transfer = migration.stats.phase_times["ownership_transfer"]
    assert outcome["done_at"] <= transfer[1]
    # The slow transaction committed (not aborted) and its write survived.
    assert cluster.dump_table("ycsb")[keys[0]] == {"f0": "slow"}
    assert cluster.metrics.abort_count(kind="migration") == 0
    assert_no_crashes(cluster)


def test_wait_and_remaster_blocks_new_txns_during_transfer():
    cluster, workload = build(num_clients=0)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    keys = sorted(cluster.nodes["node-1"].heap_for(shard).keys())
    session = cluster.session("node-2")
    begin_times = []

    def slow_txn():
        txn = yield from session.begin(label="slow")
        yield from session.update(txn, "ycsb", keys[0], {"f0": "slow"})
        yield 3.0
        yield from session.commit(txn)

    def latecomer():
        yield 1.0  # during the transfer wait
        other = cluster.session("node-3")
        txn = yield from other.begin(label="late")
        begin_times.append(cluster.sim.now)
        yield from other.read(txn, "ycsb", keys[1])
        yield from other.commit(txn)

    cluster.spawn(slow_txn())
    cluster.spawn(latecomer())
    cluster.run(until=0.1)
    migrate(cluster, WaitAndRemasterMigration, [shard], "node-1", "node-3", runtime=20.0)
    cluster.run()
    # The latecomer could only begin after the slow txn finished (gate).
    assert begin_times and begin_times[0] >= 3.0
    assert_no_crashes(cluster)


def test_wait_and_remaster_under_load_consistent():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shards = cluster.shards_on_node("node-1", table="ycsb")[:2]
    migrate(cluster, WaitAndRemasterMigration, shards, "node-1", "node-2", runtime=20.0)
    pool.stop()
    cluster.run(until=22.0)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
    assert cluster.metrics.abort_count(kind="migration") == 0
    assert_no_crashes(cluster)


# ----------------------------------------------------------------------
# Squall
# ----------------------------------------------------------------------
def test_squall_requires_shard_lock_mode():
    cluster, workload = build(cc_mode="mvcc")
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    with pytest.raises(ValueError, match="shard-lock"):
        SquallMigration(cluster, [shard], "node-1", "node-2")


def test_squall_moves_all_chunks_and_data():
    cluster, workload = build(cc_mode="shard_lock")
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    before = cluster.dump_table("ycsb")
    plan = migrate(
        cluster, SquallMigration, [shard], "node-1", "node-2",
        chunk_bytes=8192,  # force multiple chunks at test scale
    )
    assert cluster.dump_table("ycsb") == before
    assert plan.stats.chunks_pulled >= 2
    assert cluster.shard_owner(shard) == "node-2"
    assert_no_crashes(cluster)


def test_squall_under_load_consistent():
    cluster, workload = build(cc_mode="shard_lock")
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shards = cluster.shards_on_node("node-1", table="ycsb")[:2]
    migrate(
        cluster, SquallMigration, shards, "node-1", "node-2",
        runtime=25.0, chunk_bytes=16384,
    )
    pool.stop()
    cluster.run(until=27.0)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
    assert_no_crashes(cluster)


def test_squall_aborts_source_txn_touching_migrated_chunk():
    cluster, workload = build(cc_mode="shard_lock", num_clients=0)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    keys = sorted(cluster.nodes["node-1"].heap_for(shard).keys())
    other_shard = next(
        s
        for s in cluster.shards_on_node("node-2", table="ycsb")
        if cluster.nodes["node-2"].heap_for(s).key_count > 0
    )
    other_key = sorted(cluster.nodes["node-2"].heap_for(other_shard).keys())[0]
    session = cluster.session("node-1")
    results = {}

    def straddler():
        def body(sess, txn):
            # Start before the flip (on an unrelated shard, so pulls are not
            # blocked by our shard lock), then touch the migrated shard.
            yield from sess.read(txn, "ycsb", other_key)
            yield 5.0
            yield from sess.update(txn, "ycsb", keys[1], {"f0": "late"})

        committed, error = yield from run_transaction(session, body, label="straddler")
        results["committed"] = committed
        results["error"] = error

    proc = cluster.spawn(straddler())
    cluster.run(until=0.1)
    migrate(
        cluster, SquallMigration, [shard], "node-1", "node-2",
        runtime=30.0, chunk_bytes=8192,
    )
    cluster.run()
    assert proc.finished
    assert results["committed"] is False
    assert results["error"].kind == "migration"
    assert_no_crashes(cluster)


def test_squall_rejects_value_partitioned_tables():
    from repro.cluster.shard import ValuePartitioner

    cluster = Cluster(ClusterConfig(num_nodes=2))
    cluster.cc_mode = "shard_lock"
    cluster.create_table(
        "byval",
        partitioner=ValuePartitioner(2, lambda key: key[0]),
        tuple_size=64,
    )
    cluster.bulk_load("byval", [((0, i), i) for i in range(10)])
    shard = cluster.shards_on_node("node-1", table="byval")[0]
    dest = "node-2" if cluster.shard_owner(shard) == "node-1" else "node-1"
    with pytest.raises(NotImplementedError):
        SquallMigration(cluster, [shard], cluster.shard_owner(shard), dest)


# ----------------------------------------------------------------------
# Stop-and-copy
# ----------------------------------------------------------------------
def test_stop_and_copy_blocks_everything_but_is_consistent():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shards = cluster.shards_on_node("node-1", table="ycsb")[:2]
    plan = migrate(cluster, StopAndCopyMigration, shards, "node-1", "node-2", runtime=20.0)
    pool.stop()
    cluster.run(until=22.0)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
    migration = plan.migrations[0]
    assert migration.stats.phase_duration("stop_and_copy") > 0
    assert cluster.routing_gate is None
    assert_no_crashes(cluster)
