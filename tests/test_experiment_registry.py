"""The experiment registry, result round-trip, and migration facade."""

import json

import pytest

from repro.experiments import registry
from repro.experiments.common import ExperimentResult
from repro.experiments.consolidation import ConsolidationConfig
from repro.migration import APPROACHES, Migration
from repro.migration.base import MigrationPlan


def test_registry_lists_all_paper_scenarios():
    names = registry.names()
    assert names == (
        "hybrid_a",
        "hybrid_b",
        "load_balancing",
        "scale_out",
        "high_contention",
        "cross_az",
    )


def test_registry_get_unknown_scenario_names_the_choices():
    with pytest.raises(ValueError, match="hybrid_a"):
        registry.get("nonsense")


def test_registry_spec_shape():
    spec = registry.get("hybrid_b")
    assert spec.config_cls is ConsolidationConfig
    assert spec.default_approach == "remus"
    # hybrid B migrates four shards per batch (§4.4).
    assert dict(spec.config_defaults)["group_size"] == 4
    assert "squall" in spec.approaches
    assert "squall" not in registry.get("scale_out").approaches


def test_registry_make_config_applies_defaults_then_overrides():
    config = registry.make_config("hybrid_b", seed=7)
    assert config.group_size == 4 and config.seed == 7
    config = registry.make_config("hybrid_b", seed=7, group_size=2)
    assert config.group_size == 2


def test_registry_make_config_rejects_unknown_fields():
    with pytest.raises(ValueError, match="warp_factor"):
        registry.make_config("hybrid_a", warp_factor=9)


def test_registry_run_rejects_unsupported_approach():
    with pytest.raises(ValueError, match="does not support"):
        registry.run("scale_out", approach="squall")


def test_registry_run_rejects_config_plus_overrides():
    with pytest.raises(ValueError, match="not both"):
        registry.run("hybrid_a", config=ConsolidationConfig(), group_size=3)


def test_registry_register_rejects_duplicates():
    registry.ensure_loaded()
    with pytest.raises(ValueError, match="registered twice"):
        registry.register("hybrid_a", config_cls=ConsolidationConfig)(lambda a, c: None)


def test_deprecated_entry_points_are_gone():
    """The pre-registry run_<scenario> shims were removed after a
    deprecation cycle; the registry is the only entry point."""
    from repro.experiments import consolidation, high_contention, load_balancing, scale_out

    for module, name in (
        (consolidation, "run_hybrid_a"),
        (consolidation, "run_hybrid_b"),
        (load_balancing, "run_load_balancing"),
        (scale_out, "run_scale_out"),
        (high_contention, "run_high_contention"),
    ):
        assert not hasattr(module, name), "{} should have been removed".format(name)


def test_result_round_trip_is_exact():
    result = ExperimentResult(
        approach="remus",
        scenario="hybrid_a",
        throughput=[(0.5, 120.0), (1.0, 80.0)],
        migration_window=(1.25, 4.5),
        aborts={"migration": 2},
        abort_ratio=0.1,
        extra={"data_intact": True, "nested": {"deep": (1, 2)}},
    )
    payload = result.to_dict()
    # The payload is JSON-native: encoding must not fail or lose anything.
    assert json.loads(json.dumps(payload)) == payload
    rebuilt = ExperimentResult.from_dict(payload)
    assert rebuilt.to_dict() == payload
    assert rebuilt.migration_window == (1.25, 4.5)


def test_result_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="bogus"):
        ExperimentResult.from_dict({"approach": "remus", "scenario": "x", "bogus": 1})


def test_result_to_dict_flattens_stats_objects():
    from repro.migration.base import MigrationStats

    stats = MigrationStats()
    stats.tuples_copied = 42
    result = ExperimentResult(approach="remus", scenario="t", extra={"plan_stats": stats})
    payload = result.to_dict()
    assert payload["extra"]["plan_stats"]["tuples_copied"] == 42
    json.dumps(payload)


def test_migration_resolve_names_and_classes():
    for name, cls in APPROACHES.items():
        assert Migration.resolve(name) is cls
        assert Migration.resolve(cls) is cls
    with pytest.raises(ValueError, match="teleport"):
        Migration.resolve("teleport")


def test_migration_plan_builds_a_plan():
    plan = Migration.plan("remus", batches=[(["s0"], "node-1", "node-2")], pause=0.5)
    assert isinstance(plan, MigrationPlan)
    assert plan.approach_cls is Migration.resolve("remus")
    assert plan.pause == 0.5


def test_migration_launch_runs_a_real_migration():
    from repro.cluster import Cluster
    from repro.config import ClusterConfig

    cluster = Cluster(ClusterConfig(num_nodes=2))
    cluster.create_table("kv", num_shards=2, tuple_size=64)
    cluster.bulk_load("kv", [(k, k) for k in range(60)])
    shard = cluster.shards_on_node("node-1", table="kv")[0]
    plan = Migration.plan("remus", batches=[([shard], "node-1", "node-2")])
    stats = cluster.sim.run_until_complete(
        cluster.spawn(Migration.launch(cluster, plan))
    )
    assert shard in cluster.shards_on_node("node-2", table="kv")
    assert stats.tuples_copied > 0
    payload = stats.to_dict()
    assert payload["tuples_copied"] == stats.tuples_copied
    json.dumps(payload)
